(** Multi-stream execution analysis (§8 "Extending BLP problem
    formulation" / §5.3: Korch deliberately schedules kernels on one CUDA
    stream; this module quantifies what concurrent streams would add).

    The selected kernels form a dependency DAG: kernel B depends on kernel
    A when A is the kernel that publishes one of B's external input
    tensors (under the sequential plan's publisher binding). Greedy list
    scheduling onto [streams] queues gives the projected makespan; the
    critical path gives the limit for infinitely many streams. *)

open Ir

type analysis = {
  sequential_us : float;  (** Eq. 2 cost: sum of kernel latencies *)
  makespan_us : float;  (** projected latency with the given stream count *)
  critical_path_us : float;  (** lower bound: longest dependency chain *)
  streams : int;
}

(* For each kernel, the indices of the kernels it depends on. *)
let kernel_deps (g : Primgraph.t) (plan : Plan.t) : int list array =
  let kernels = Array.of_list plan.Plan.kernels in
  let nk = Array.length kernels in
  let publisher : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* prim id -> index of the kernel whose published value kernel i reads:
     the most recent publisher at the time kernel i runs. *)
  let deps = Array.make nk [] in
  Array.iteri
    (fun i k ->
      let members = Bitset.of_list (Graph.length g) k.Plan.prims in
      let ext = Graph.external_inputs g members in
      let ds =
        List.filter_map
          (fun p ->
            if Primitive.is_source (Graph.op g p) then None
            else Hashtbl.find_opt publisher p)
          ext
        |> List.sort_uniq compare
      in
      deps.(i) <- ds;
      List.iter (fun o -> Hashtbl.replace publisher o i) k.Plan.outputs)
    kernels;
  deps

(** [analyze g plan ~streams] — project the plan onto [streams] concurrent
    execution queues. *)
let analyze (g : Primgraph.t) (plan : Plan.t) ~(streams : int) : analysis =
  if streams < 1 then invalid_arg "Multistream.analyze: streams must be positive";
  let kernels = Array.of_list plan.Plan.kernels in
  let nk = Array.length kernels in
  let deps = kernel_deps g plan in
  (* Critical path via longest finish time with unlimited parallelism. *)
  let finish_unlimited = Array.make nk 0.0 in
  for i = 0 to nk - 1 do
    let ready =
      List.fold_left (fun acc d -> Float.max acc finish_unlimited.(d)) 0.0 deps.(i)
    in
    finish_unlimited.(i) <- ready +. kernels.(i).Plan.latency_us
  done;
  let critical_path_us = Array.fold_left Float.max 0.0 finish_unlimited in
  (* Greedy list scheduling in plan order onto [streams] queues. *)
  let stream_free = Array.make streams 0.0 in
  let finish = Array.make nk 0.0 in
  for i = 0 to nk - 1 do
    let ready = List.fold_left (fun acc d -> Float.max acc finish.(d)) 0.0 deps.(i) in
    (* earliest-available stream *)
    let best = ref 0 in
    for s = 1 to streams - 1 do
      if stream_free.(s) < stream_free.(!best) then best := s
    done;
    let start = Float.max ready stream_free.(!best) in
    finish.(i) <- start +. kernels.(i).Plan.latency_us;
    stream_free.(!best) <- finish.(i)
  done;
  {
    sequential_us = plan.Plan.total_latency_us;
    makespan_us = Array.fold_left Float.max 0.0 finish;
    critical_path_us;
    streams;
  }

(** [parallelism g plan] — average width of the kernel DAG:
    [sequential / critical path]; 1.0 means a pure chain. *)
let parallelism (g : Primgraph.t) (plan : Plan.t) : float =
  let a = analyze g plan ~streams:1 in
  if a.critical_path_us > 0.0 then a.sequential_us /. a.critical_path_us else 1.0
