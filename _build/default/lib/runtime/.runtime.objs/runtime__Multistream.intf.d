lib/runtime/multistream.mli: Ir Plan Primgraph
