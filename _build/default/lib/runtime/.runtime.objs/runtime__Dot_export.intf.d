lib/runtime/dot_export.mli: Ir Plan Primgraph
