lib/runtime/executor.ml: Array Bitset Graph Hashtbl Ir List Nd Plan Prim_interp Primgraph Primitive Printf Tensor
