lib/runtime/multistream.ml: Array Bitset Float Graph Hashtbl Ir List Plan Primgraph Primitive
