lib/runtime/plan.ml: Format List String
