lib/runtime/dot_export.ml: Array Buffer Graph Hashtbl Ir List Plan Primgraph Primitive Printf String Tensor
