lib/runtime/executor.mli: Ir Nd Plan Primgraph Tensor
