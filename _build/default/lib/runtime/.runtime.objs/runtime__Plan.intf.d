lib/runtime/plan.mli: Format
