lib/runtime/prim_interp.ml: Array Const Graph Hashtbl Ir List Nd Ops_elementwise Ops_layout Ops_linear Ops_reduce Primgraph Primitive Printf Shape Tensor
