lib/runtime/interp.ml: Array Const Graph Hashtbl Ir List Nd Opgraph Ops_elementwise Ops_layout Ops_linear Ops_reduce Optype Printf Shape Tensor
