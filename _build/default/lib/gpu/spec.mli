(** GPU datasheets (Figure 5).

    Published peak numbers for the four generations the paper plots; the
    trend they expose — floating-point throughput outgrowing memory
    bandwidth — is what makes redundant computation profitable (§4.2). *)

type t = {
  name : string;
  fp32_tflops : float;  (** peak FP32 (CUDA-core) TFLOP/s *)
  tf32_tflops : float;  (** peak TF32 tensor-core TFLOP/s (= FP32 where absent) *)
  fp16_tflops : float;  (** peak FP16 (tensor-core where present) TFLOP/s *)
  mem_bw_gb_s : float;  (** peak device memory bandwidth, GB/s *)
  launch_overhead_us : float;  (** per-kernel launch latency, microseconds *)
  l2_cache_mb : float;
  tvm_maturity : float;
      (** achieved fraction of nominal quality for auto-generated (TVM)
          kernels on this architecture; §6.2 observes TVM lags hand-tuned
          TensorRT on A100 *)
}

val p100 : t

(** The paper's primary platform (16 GB SXM2). *)
val v100 : t

(** The paper's second platform (80 GB SXM4). *)
val a100 : t

val h100 : t

(** All four generations, oldest first. *)
val all : t list

(** [by_name "v100"] — case-insensitive lookup. *)
val by_name : string -> t option

(** [flops_to_bw_ratio g] — peak matrix-math FLOP per byte of bandwidth,
    the quantity whose growth across generations (Figure 5) justifies
    redundant computation. *)
val flops_to_bw_ratio : t -> float
