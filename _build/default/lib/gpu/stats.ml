(** Static arithmetic/traffic statistics of primitives and kernel
    subgraphs — the inputs to the roofline cost model. *)

open Ir
open Tensor

(* Cost in "flop equivalents" of one application of a unary function.
   Transcendentals run on the SFU at a fraction of FMA throughput. *)
let unary_flop_cost : Primitive.unary -> float = function
  | Primitive.Exp | Log | Sqrt | Rsqrt | Erf | Tanh | Sigmoid -> 4.0
  | Silu | Gelu -> 6.0
  | Mish -> 10.0
  | Neg | Abs | Relu | AddConst _ | MulConst _ -> 1.0
  | LeakyRelu _ | Clip _ -> 2.0
  | Square | Reciprocal | PowConst _ -> 2.0

(** [prim_flops g id] — floating-point operations executed by node [id]. *)
let prim_flops (g : Primgraph.t) (id : int) : float =
  let nd = Graph.node g id in
  let out_elems = float_of_int (Shape.numel nd.Graph.shape) in
  let in_elems () =
    match Graph.inputs g id with
    | i :: _ -> float_of_int (Shape.numel (Graph.shape g i))
    | [] -> 0.0
  in
  match nd.Graph.op with
  | Primitive.Input _ | Constant _ -> 0.0
  | Unary u -> out_elems *. unary_flop_cost u
  | Binary _ -> out_elems
  | Reduce _ -> in_elems ()
  | Broadcast _ -> 0.0
  | Pool { kernel = kh, kw; _ } -> out_elems *. float_of_int (kh * kw)
  | Transpose _ | Reshape _ | Pad _ | Slice _ | Concat _ -> 0.0
  | Matmul -> begin
    match Graph.inputs g id with
    | [ a; _ ] ->
      let sa = Graph.shape g a in
      let k = sa.(Shape.rank sa - 1) in
      2.0 *. out_elems *. float_of_int k
    | _ -> 0.0
  end
  | Conv _ -> begin
    match Graph.inputs g id with
    | [ _; w ] ->
      let sw = Graph.shape g w in
      (* 2 * OUT * (IC*KH*KW) *)
      2.0 *. out_elems *. float_of_int (sw.(1) * sw.(2) * sw.(3))
    | _ -> 0.0
  end
  | Upsample _ -> 0.0
  | Opaque _ -> 4.0 *. in_elems ()

(** Shape of the single linear-transformation primitive in a kernel, used
    for GEMM efficiency modelling: [(m, n, k)] of the equivalent GEMM. *)
let linear_dims (g : Primgraph.t) (id : int) : (int * int * int) option =
  let nd = Graph.node g id in
  match nd.Graph.op with
  | Primitive.Matmul -> begin
    match Graph.inputs g id with
    | [ a; _ ] ->
      let sa = Graph.shape g a and so = nd.Graph.shape in
      let r = Shape.rank so in
      let batch = Shape.numel (Array.sub so 0 (r - 2)) in
      Some (so.(r - 2) * batch, so.(r - 1), sa.(Shape.rank sa - 1))
    | _ -> None
  end
  | Conv _ -> begin
    match Graph.inputs g id with
    | [ _; w ] ->
      let sw = Graph.shape g w and so = nd.Graph.shape in
      (* im2col GEMM: [N*OH*OW x IC*KH*KW] x [IC*KH*KW x OC] *)
      Some (so.(0) * so.(2) * so.(3), sw.(0), sw.(1) * sw.(2) * sw.(3))
    | _ -> None
  end
  | _ -> None

(** Aggregate statistics of a candidate kernel. *)
type kernel_stats = {
  n_prims : int;  (** executable primitives in the kernel *)
  flops : float;
  read_elems : float;  (** distinct external input elements *)
  write_elems : float;  (** published output elements *)
  classes : Primitive.category list;  (** distinct categories present *)
  reduce_passes : int;
      (** reduce-category prims whose result is consumed inside the kernel *)
  extra_read_elems : float;
      (** data re-traversed after in-kernel reductions: for each reduce
          whose result is consumed inside the kernel, the elements that
          must be revisited after the synchronization point — bounded both
          by the reduce's own input size and by the largest in-kernel
          tensor downstream of it (a softmax-style broadcast-back pays a
          full extra pass; a second-stage reduction over already-reduced
          data pays almost nothing) *)
  linear_prims : int list;  (** ids of linear-transformation members *)
  layout_prims : int list;
  has_opaque : bool;
}

(** [kernel_stats g members ~outputs] computes the statistics of executing
    the primitive set [members] as one kernel publishing [outputs]. *)
let kernel_stats (g : Primgraph.t) (members : Bitset.t) ~(outputs : int list) : kernel_stats
    =
  let flops = ref 0.0 and n_prims = ref 0 in
  let classes = ref [] and reduce_passes = ref 0 in
  let extra_read_elems = ref 0.0 in
  let linear_prims = ref [] and layout_prims = ref [] in
  let has_opaque = ref false in
  let sc = Graph.succs g in
  (* Largest tensor reachable from [id] through in-kernel successors. *)
  let max_downstream_numel id =
    let best = ref 0 in
    let seen = Hashtbl.create 8 in
    let rec go v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        best := Stdlib.max !best (Shape.numel (Graph.shape g v));
        List.iter (fun s -> if Bitset.mem members s then go s) sc.(v)
      end
    in
    List.iter (fun s -> if Bitset.mem members s then go s) sc.(id);
    !best
  in
  Bitset.iter
    (fun id ->
      let op = Graph.op g id in
      if not (Primitive.is_source op) then begin
        incr n_prims;
        flops := !flops +. prim_flops g id;
        let cat = Primitive.category op in
        if not (List.mem cat !classes) then classes := cat :: !classes;
        (match cat with
        | Primitive.Reduction ->
          if List.exists (fun s -> Bitset.mem members s) sc.(id) then begin
            incr reduce_passes;
            let own_input =
              match Graph.inputs g id with
              | i :: _ -> Shape.numel (Graph.shape g i)
              | [] -> 0
            in
            extra_read_elems :=
              !extra_read_elems
              +. float_of_int (Stdlib.min own_input (max_downstream_numel id))
          end
        | Linear -> linear_prims := id :: !linear_prims
        | Layout -> layout_prims := id :: !layout_prims
        | Unknown -> has_opaque := true
        | Elementwise | Broadcasting | Source -> ())
      end)
    members;
  let read_elems =
    List.fold_left
      (fun acc i -> acc +. float_of_int (Shape.numel (Graph.shape g i)))
      0.0
      (Graph.external_inputs g members)
  in
  let write_elems =
    List.fold_left (fun acc o -> acc +. float_of_int (Shape.numel (Graph.shape g o))) 0.0 outputs
  in
  {
    n_prims = !n_prims;
    flops = !flops;
    read_elems;
    write_elems;
    classes = !classes;
    reduce_passes = !reduce_passes;
    extra_read_elems = !extra_read_elems;
    linear_prims = !linear_prims;
    layout_prims = !layout_prims;
    has_opaque = !has_opaque;
  }
