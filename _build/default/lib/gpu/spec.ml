(** GPU datasheets (Figure 5).

    Published peak numbers for the four generations the paper plots. The
    key trend the paper builds on — floating-point throughput growing much
    faster than memory bandwidth — is visible directly in these numbers and
    is what makes redundant computation profitable (§4.2). *)

type t = {
  name : string;
  fp32_tflops : float;  (** peak FP32 (CUDA core) TFLOP/s *)
  tf32_tflops : float;  (** peak TF32 tensor-core TFLOP/s (= FP32 where absent) *)
  fp16_tflops : float;  (** peak FP16 (tensor-core where present) TFLOP/s *)
  mem_bw_gb_s : float;  (** peak device memory bandwidth, GB/s *)
  launch_overhead_us : float;  (** per-kernel launch latency, microseconds *)
  l2_cache_mb : float;
  tvm_maturity : float;
      (** achieved fraction of nominal quality for auto-generated (TVM)
          kernels on this architecture. §6.2 observes that TVM's schedules
          lag hand-tuned TensorRT on A100, reducing Korch's edge there —
          generated-kernel quality is not uniform across generations. *)
}

(** Tesla P100 (SXM2, 16 GB HBM2). *)
let p100 =
  { name = "P100"; fp32_tflops = 10.6; tf32_tflops = 10.6; fp16_tflops = 21.2;
    mem_bw_gb_s = 732.0; launch_overhead_us = 5.0; l2_cache_mb = 4.0; tvm_maturity = 1.0 }

(** Tesla V100 (SXM2, 16 GB HBM2) — the paper's primary platform. *)
let v100 =
  { name = "V100"; fp32_tflops = 15.7; tf32_tflops = 15.7; fp16_tflops = 125.0;
    mem_bw_gb_s = 900.0; launch_overhead_us = 5.0; l2_cache_mb = 6.0; tvm_maturity = 1.0 }

(** A100 (SXM4, 80 GB HBM2e) — the paper's second platform. *)
let a100 =
  { name = "A100"; fp32_tflops = 19.5; tf32_tflops = 156.0; fp16_tflops = 312.0;
    mem_bw_gb_s = 2039.0; launch_overhead_us = 4.0; l2_cache_mb = 40.0; tvm_maturity = 0.8 }

(** H100 (SXM5, 80 GB HBM3), included in the Figure 5 trend. *)
let h100 =
  { name = "H100"; fp32_tflops = 66.9; tf32_tflops = 494.5; fp16_tflops = 989.0;
    mem_bw_gb_s = 3350.0; launch_overhead_us = 4.0; l2_cache_mb = 50.0; tvm_maturity = 0.75 }

let all = [ p100; v100; a100; h100 ]

let by_name name =
  match String.lowercase_ascii name with
  | "p100" -> Some p100
  | "v100" -> Some v100
  | "a100" -> Some a100
  | "h100" -> Some h100
  | _ -> None

(** [flops_to_bw_ratio g] is peak matrix-math (FP16/tensor-core) FLOP per
    byte of memory bandwidth — the quantity whose growth across
    generations (Figure 5) justifies redundant computation (§4.2). *)
let flops_to_bw_ratio (g : t) = g.fp16_tflops *. 1e12 /. (g.mem_bw_gb_s *. 1e9)
