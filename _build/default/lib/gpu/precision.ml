(** Numeric precision selection.

    The paper evaluates FP32 on V100 and TF32 (tensor cores enabled) on
    A100 (§6.1). Precision affects the peak throughput used for the
    compute-bound side of the roofline; element size stays 4 bytes for both
    FP32 and TF32. *)

type t = FP32 | TF32 | FP16

let to_string = function FP32 -> "fp32" | TF32 -> "tf32" | FP16 -> "fp16"

let of_string s =
  match String.lowercase_ascii s with
  | "fp32" -> Some FP32
  | "tf32" -> Some TF32
  | "fp16" -> Some FP16
  | _ -> None

(** [bytes_per_element p] — storage footprint of one scalar. *)
let bytes_per_element = function FP32 | TF32 -> 4 | FP16 -> 2

(** [peak_tflops spec p] — peak throughput for matrix-math at this
    precision. *)
let peak_tflops (spec : Spec.t) = function
  | FP32 -> spec.Spec.fp32_tflops
  | TF32 -> spec.Spec.tf32_tflops
  | FP16 -> spec.Spec.fp16_tflops

(** [vector_tflops spec p] — peak throughput for non-matrix (CUDA-core)
    arithmetic; tensor cores do not apply to elementwise work. *)
let vector_tflops (spec : Spec.t) = function
  | FP32 | TF32 -> spec.Spec.fp32_tflops
  | FP16 -> spec.Spec.fp32_tflops *. 2.0
