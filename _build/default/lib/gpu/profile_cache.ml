(** Profile database (the paper's "TVM database", §6.5/A.7).

    Caches profiling results by canonical kernel signature so structurally
    identical candidates are tuned once. Tracks cumulative simulated tuning
    time — the quantity Table 2 reports — counting each distinct kernel's
    tuning cost exactly once. *)

open Ir

type t = {
  table : (string, Profiler.result option) Hashtbl.t;
  mutable tuning_time_s : float;  (** accumulated simulated tuning time *)
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 1024; tuning_time_s = 0.0; hits = 0; misses = 0 }

(** [profile cache cfg ~spec ~precision g members ~outputs] — cached
    version of {!Profiler.profile}. *)
let profile (cache : t) (cfg : Profiler.config) ~(spec : Spec.t)
    ~(precision : Precision.t) (g : Primgraph.t) (members : Bitset.t)
    ~(outputs : int list) : Profiler.result option =
  let key = Profiler.signature g members ~outputs ~spec ~precision in
  match Hashtbl.find_opt cache.table key with
  | Some r ->
    cache.hits <- cache.hits + 1;
    r
  | None ->
    cache.misses <- cache.misses + 1;
    let r = Profiler.profile cfg ~spec ~precision g members ~outputs in
    (match r with Some r -> cache.tuning_time_s <- cache.tuning_time_s +. r.Profiler.tuning_time_s | None -> ());
    Hashtbl.replace cache.table key r;
    r

(** [distinct_kernels cache] — number of distinct candidate kernels
    profiled (cache entries). *)
let distinct_kernels (cache : t) = Hashtbl.length cache.table
