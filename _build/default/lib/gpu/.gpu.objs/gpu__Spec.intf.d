lib/gpu/spec.mli:
