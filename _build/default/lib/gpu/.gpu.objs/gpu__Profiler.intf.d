lib/gpu/profiler.mli: Bitset Cost_model Ir Precision Primgraph Spec
