lib/gpu/profile_cache.mli: Bitset Hashtbl Ir Precision Primgraph Profiler Spec
