lib/gpu/precision.mli: Spec
