lib/gpu/cost_model.ml: Float Ir List Precision Spec Stats Stdlib
