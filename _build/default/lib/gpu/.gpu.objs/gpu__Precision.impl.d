lib/gpu/precision.ml: Spec String
