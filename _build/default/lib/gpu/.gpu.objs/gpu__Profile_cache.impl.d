lib/gpu/profile_cache.ml: Bitset Hashtbl Ir Precision Primgraph Profiler Spec
