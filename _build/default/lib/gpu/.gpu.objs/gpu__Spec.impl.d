lib/gpu/spec.ml: String
