lib/gpu/stats.ml: Array Bitset Graph Hashtbl Ir List Primgraph Primitive Shape Stdlib Tensor
