lib/gpu/profiler.ml: Bitset Buffer Cost_model Graph Hashtbl Ir List Precision Primgraph Primitive Printf Spec Stats Tensor
