(** Profile database (the paper's "TVM database", §6.5/A.7).

    Caches profiling results by canonical kernel signature so structurally
    identical candidates are tuned once, and accumulates the simulated
    tuning time Table 2 reports. *)

open Ir

type t = {
  table : (string, Profiler.result option) Hashtbl.t;
  mutable tuning_time_s : float;  (** accumulated simulated tuning time *)
  mutable hits : int;
  mutable misses : int;
}

val create : unit -> t

(** Cached version of {!Profiler.profile}: a miss profiles and charges its
    tuning time; a hit is free. *)
val profile :
  t ->
  Profiler.config ->
  spec:Spec.t ->
  precision:Precision.t ->
  Primgraph.t ->
  Bitset.t ->
  outputs:int list ->
  Profiler.result option

(** Number of distinct candidate kernels profiled so far. *)
val distinct_kernels : t -> int
