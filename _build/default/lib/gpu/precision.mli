(** Numeric precision selection.

    The paper evaluates FP32 on V100 and TF32 (tensor cores) on A100
    (§6.1). Precision selects the peak throughput used on the
    compute-bound side of the roofline; FP32 and TF32 both store 4 bytes
    per scalar. *)

type t = FP32 | TF32 | FP16

val to_string : t -> string
val of_string : string -> t option

(** Storage footprint of one scalar, in bytes. *)
val bytes_per_element : t -> int

(** Peak matrix-math throughput at this precision (tensor cores where the
    architecture has them). *)
val peak_tflops : Spec.t -> t -> float

(** Peak non-matrix (CUDA-core) arithmetic throughput — tensor cores do
    not apply to elementwise work. *)
val vector_tflops : Spec.t -> t -> float
