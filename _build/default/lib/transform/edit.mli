(** Graph surgery for rewrite rules.

    An [Edit.t] wraps a primitive graph, supports appending fresh nodes
    and redirecting consumers from an old node to a replacement, and on
    [finish] garbage-collects nodes unreachable from the graph outputs and
    renumbers densely. Rules are a few [add]/[redirect] calls instead of
    manual array surgery. *)

open Ir
open Tensor

type t

val of_graph : Primgraph.t -> t

(** Output shape of a base or fresh node. *)
val shape_of : t -> int -> Shape.t

(** [add e op inputs] appends a fresh node (inputs may reference base or
    fresh ids) and returns its id; the shape is inferred. *)
val add : t -> Primitive.t -> int list -> int

(** [redirect e ~old ~new_] makes every consumer of [old] — and the graph
    output list — refer to [new_]. Raises [Invalid_argument] when the
    shapes differ. Rules must not make [new_] transitively depend on
    [old]; {!finish} validates acyclicity. *)
val redirect : t -> old:int -> new_:int -> unit

(** Produce the rewritten, garbage-collected, validated graph. *)
val finish : t -> Primgraph.t
