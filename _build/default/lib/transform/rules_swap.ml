(** Swapping elementwise division with a subsequent MatMul (§3, Figure 2b,
    second transformation; originally a TASO-discovered substitution).

    If the divisor is a per-row scale — i.e. the second operand of the Div
    is a [Broadcast] along the contracted (last) axis — then
    [(x / bcast(c)) @ y = (x @ y) / bcast'(c)]: row [i] of the product is
    scaled by [1 / c_i] either way. Moving the Div after the MatMul lets
    the reduce-turned-MatMul fuse with its neighbour. *)

open Ir
open Tensor

let apply (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  let sc = Graph.succs g in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Matmul -> begin
        match Graph.inputs g nd.Graph.id with
        | [ d; y ] -> begin
          match Graph.op g d with
          | Primitive.Binary Primitive.Div -> begin
            match Graph.inputs g d with
            | [ x; bc ] -> begin
              match Graph.op g bc with
              | Primitive.Broadcast (axis, _size) ->
                let rx = Shape.rank (Graph.shape g x) in
                (* The broadcast must replicate along the contracted axis
                   and feed only this Div (otherwise it is still needed). *)
                if
                  axis = rx - 1
                  && sc.(d) = [ nd.Graph.id ]
                  && Shape.equal (Graph.shape g bc) (Graph.shape g x)
                then begin
                  match Graph.inputs g bc with
                  | [ c ] ->
                    let e = Edit.of_graph g in
                    let mm = Edit.add e Primitive.Matmul [ x; y ] in
                    let out_shape = Edit.shape_of e mm in
                    let r_out = Shape.rank out_shape in
                    let bc' =
                      Edit.add e
                        (Primitive.Broadcast (r_out - 1, out_shape.(r_out - 1)))
                        [ c ]
                    in
                    let div = Edit.add e (Primitive.Binary Primitive.Div) [ mm; bc' ] in
                    Edit.redirect e ~old:nd.Graph.id ~new_:div;
                    results := Edit.finish e :: !results
                  | _ -> ()
                end
              | _ -> ()
            end
            | _ -> ()
          end
          | _ -> ()
        end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results
