(** Merging two MatMuls that share an operand (§3, Figure 2b third
    transformation; Figure 9b).

    [a @ b1] and [a @ b2] become [z = a @ concat(b1, b2, last)] followed by
    two Slices — one wider, better-utilized GEMM instead of two thin ones.
    (The paper phrases the attention instance as Pad+Split of a ones
    vector; concatenation along the output axis is the general form.)
    Symmetrically, [a1 @ b] and [a2 @ b] merge by concatenating along the
    row axis. *)

open Ir
open Tensor

let matmul_nodes g =
  Array.to_list g.Graph.nodes
  |> List.filter_map (fun nd ->
         match nd.Graph.op with
         | Primitive.Matmul -> begin
           match nd.Graph.inputs with [ a; b ] -> Some (nd.Graph.id, a, b) | _ -> None
         end
         | _ -> None)

(* Merge when the non-shared operands agree on every dimension except
   [concat_axis_from_end] counted from the end. *)
let mergeable (g : Primgraph.t) x1 x2 ~axis_from_end =
  let s1 = Graph.shape g x1 and s2 = Graph.shape g x2 in
  let r = Shape.rank s1 in
  Shape.rank s2 = r
  && r >= 2
  &&
  let ax = r - axis_from_end in
  Array.for_all
    (fun i -> i = ax || s1.(i) = s2.(i))
    (Array.init r (fun i -> i))
  |> fun ok -> ok

let apply (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  let mms = matmul_nodes g in
  let pairs =
    List.concat_map (fun m1 -> List.map (fun m2 -> (m1, m2)) mms) mms
    |> List.filter (fun ((id1, _, _), (id2, _, _)) -> id1 < id2)
  in
  List.iter
    (fun ((id1, a1, b1), (id2, a2, b2)) ->
      (* Node ids are topologically ordered, so operands of [id1] cannot
         depend on [id2]; the only cycle risk is an operand of [id2]
         depending on [id1]. *)
      let desc1 = Graph.descendants g id1 in
      let independent x = not (Bitset.mem desc1 x) && x <> id1 in
      (* Shared first operand: concat second operands on the last axis. *)
      if a1 = a2 && independent b2 && mergeable g b1 b2 ~axis_from_end:1 then begin
        let s1 = Graph.shape g b1 in
        let r = Shape.rank s1 in
        let ax = r - 1 in
        let n1 = s1.(ax) and n2 = (Graph.shape g b2).(ax) in
        let out1 = Graph.shape g id1 in
        let ro = Shape.rank out1 in
        let e = Edit.of_graph g in
        let cat = Edit.add e (Primitive.Concat ax) [ b1; b2 ] in
        let mm = Edit.add e Primitive.Matmul [ a1; cat ] in
        let z_shape = Edit.shape_of e mm in
        let starts1 = Array.make ro 0 and stops1 = Array.copy z_shape in
        stops1.(ro - 1) <- n1;
        let starts2 = Array.make ro 0 and stops2 = Array.copy z_shape in
        starts2.(ro - 1) <- n1;
        stops2.(ro - 1) <- n1 + n2;
        let sl1 = Edit.add e (Primitive.Slice { starts = starts1; stops = stops1 }) [ mm ] in
        let sl2 = Edit.add e (Primitive.Slice { starts = starts2; stops = stops2 }) [ mm ] in
        Edit.redirect e ~old:id1 ~new_:sl1;
        Edit.redirect e ~old:id2 ~new_:sl2;
        results := Edit.finish e :: !results
      end;
      (* Shared second operand: concat first operands on the row axis. *)
      if b1 = b2 && independent a2 && mergeable g a1 a2 ~axis_from_end:2 then begin
        let s1 = Graph.shape g a1 in
        let r = Shape.rank s1 in
        let ax = r - 2 in
        let m1 = s1.(ax) and m2 = (Graph.shape g a2).(ax) in
        let out1 = Graph.shape g id1 in
        let ro = Shape.rank out1 in
        let e = Edit.of_graph g in
        let cat = Edit.add e (Primitive.Concat ax) [ a1; a2 ] in
        let mm = Edit.add e Primitive.Matmul [ cat; b1 ] in
        let z_shape = Edit.shape_of e mm in
        let starts1 = Array.make ro 0 and stops1 = Array.copy z_shape in
        stops1.(ro - 2) <- m1;
        let starts2 = Array.make ro 0 and stops2 = Array.copy z_shape in
        starts2.(ro - 2) <- m1;
        stops2.(ro - 2) <- m1 + m2;
        let sl1 = Edit.add e (Primitive.Slice { starts = starts1; stops = stops1 }) [ mm ] in
        let sl2 = Edit.add e (Primitive.Slice { starts = starts2; stops = stops2 }) [ mm ] in
        Edit.redirect e ~old:id1 ~new_:sl1;
        Edit.redirect e ~old:id2 ~new_:sl2;
        results := Edit.finish e :: !results
      end)
    pairs;
  !results
