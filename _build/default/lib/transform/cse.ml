(** Common subexpression elimination on primitive graphs.

    Structurally identical nodes (same primitive, same input ids) are
    merged. Run after fission: neighbouring operator decompositions often
    produce duplicate reduces/broadcasts. *)

open Ir

let prim_key (p : Primitive.t) (inputs : int list) : string =
  let payload =
    (* [Primitive.to_string] renders constant payloads opaquely; include a
       content hash so distinct embedded tensors never share a key. *)
    match p with
    | Primitive.Constant { Const.fill = Const.Data nd; _ } ->
      Printf.sprintf "#%d" (Hashtbl.hash_param 256 512 nd.Tensor.Nd.data)
    | _ -> ""
  in
  Primitive.to_string p ^ payload ^ "("
  ^ String.concat "," (List.map string_of_int inputs)
  ^ ")"

(** [run g] merges duplicates until fixpoint and returns the reduced
    graph. Named graph inputs are never merged with one another. *)
let run (g : Primgraph.t) : Primgraph.t =
  let changed = ref true in
  let g = ref g in
  while !changed do
    changed := false;
    let seen = Hashtbl.create 64 in
    let e = Edit.of_graph !g in
    Array.iter
      (fun nd ->
        match nd.Graph.op with
        | Primitive.Input _ -> ()
        | op ->
          let key = prim_key op nd.Graph.inputs in
          (match Hashtbl.find_opt seen key with
          | Some canonical
            when canonical <> nd.Graph.id
                 (* Guard against key collisions: the primitives (payloads
                    included) must be structurally identical. *)
                 && Graph.op !g canonical = op
                 && Graph.inputs !g canonical = nd.Graph.inputs ->
            Edit.redirect e ~old:nd.Graph.id ~new_:canonical;
            changed := true
          | Some _ -> ()
          | None -> Hashtbl.replace seen key nd.Graph.id))
      !g.Graph.nodes;
    if !changed then g := Edit.finish e
  done;
  !g
