(** Transpose-movement rules.

    These enlarge the layout search space the case study of Figure 8
    exploits: (a) cancelling inverse transpose pairs, (b) rewriting a
    transposed MatMul result as a MatMul of transposed operands (so the
    expensive product runs in the friendlier layout and the vendor kernel
    absorbs operand transposes), and (c) commuting a Transpose with a
    unary elementwise primitive. *)

open Ir
open Tensor

let is_identity_perm perm = Array.for_all2 ( = ) perm (Array.init (Array.length perm) Fun.id)

let compose p q = Array.map (fun i -> q.(i)) p

(* Swap-last-two permutation of rank r. *)
let swap_last r =
  let p = Array.init r Fun.id in
  p.(r - 1) <- r - 2;
  p.(r - 2) <- r - 1;
  p

(** Transpose(Transpose(x)) with composing permutations cancels or fuses. *)
let cancel_pairs (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Transpose p_outer -> begin
        match Graph.inputs g nd.Graph.id with
        | [ inner ] -> begin
          match Graph.op g inner with
          | Primitive.Transpose p_inner -> begin
            match Graph.inputs g inner with
            | [ x ] ->
              let composed = compose p_outer p_inner in
              let e = Edit.of_graph g in
              let replacement =
                if is_identity_perm composed then x
                else Edit.add e (Primitive.Transpose composed) [ x ]
              in
              Edit.redirect e ~old:nd.Graph.id ~new_:replacement;
              results := Edit.finish e :: !results
            | _ -> ()
          end
          | _ -> ()
        end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

(** Transpose of a MatMul result (last two axes) becomes a MatMul of the
    swapped, transposed operands: [(a @ b)^T = b^T @ a^T]. *)
let transpose_of_matmul (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Transpose perm -> begin
        match Graph.inputs g nd.Graph.id with
        | [ mm ] -> begin
          match (Graph.op g mm, Graph.inputs g mm) with
          | Primitive.Matmul, [ a; b ] ->
            let r = Shape.rank (Graph.shape g mm) in
            if r >= 2 && perm = swap_last r then begin
              let ra = Shape.rank (Graph.shape g a) in
              let rb = Shape.rank (Graph.shape g b) in
              if ra = r && rb = r then begin
                let e = Edit.of_graph g in
                let bt = Edit.add e (Primitive.Transpose (swap_last rb)) [ b ] in
                let at = Edit.add e (Primitive.Transpose (swap_last ra)) [ a ] in
                let mm' = Edit.add e Primitive.Matmul [ bt; at ] in
                Edit.redirect e ~old:nd.Graph.id ~new_:mm';
                results := Edit.finish e :: !results
              end
            end
          | _ -> ()
        end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

(** Commute Transpose with a unary elementwise primitive:
    [Unary(Transpose x) -> Transpose(Unary x)]. Moving the layout change
    later often lets it fuse into a vendor kernel. *)
let push_through_unary (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Unary u -> begin
        match Graph.inputs g nd.Graph.id with
        | [ t ] -> begin
          match (Graph.op g t, Graph.inputs g t) with
          | Primitive.Transpose perm, [ x ] ->
            let e = Edit.of_graph g in
            let u' = Edit.add e (Primitive.Unary u) [ x ] in
            let t' = Edit.add e (Primitive.Transpose perm) [ u' ] in
            Edit.redirect e ~old:nd.Graph.id ~new_:t';
            results := Edit.finish e :: !results
          | _ -> ()
        end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let apply (g : Primgraph.t) : Primgraph.t list =
  cancel_pairs g @ transpose_of_matmul g @ push_through_unary g
