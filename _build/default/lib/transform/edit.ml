(** Graph surgery for rewrite rules.

    An [Edit.t] wraps a primitive graph, supports appending fresh nodes and
    redirecting consumers from an old node to a replacement, and on
    [finish] garbage-collects nodes no longer reachable from the graph
    outputs and renumbers densely. Rewrite rules are expressed as a few
    [add]/[redirect] calls instead of manual array surgery. *)

open Ir
open Tensor

type pending = { op : Primitive.t; inputs : int list; shape : Shape.t }

type t = {
  base : Primgraph.t;
  mutable fresh : pending list;  (** reversed list of appended nodes *)
  mutable fresh_count : int;
  replace : (int, int) Hashtbl.t;  (** old id -> replacement id *)
}

let of_graph (g : Primgraph.t) : t =
  { base = g; fresh = []; fresh_count = 0; replace = Hashtbl.create 8 }

let shape_of (e : t) (id : int) : Shape.t =
  let n = Graph.length e.base in
  if id < n then Graph.shape e.base id
  else (List.nth e.fresh (e.fresh_count - 1 - (id - n))).shape

(** [add e op inputs] appends a fresh node (inputs may reference base or
    fresh ids) and returns its id. Shape is inferred. *)
let add (e : t) (op : Primitive.t) (inputs : int list) : int =
  let shapes = List.map (shape_of e) inputs in
  let shape =
    match op with
    | Primitive.Constant c -> c.Const.shape
    | _ -> Shape_infer.prim op shapes
  in
  let id = Graph.length e.base + e.fresh_count in
  e.fresh <- { op; inputs; shape } :: e.fresh;
  e.fresh_count <- e.fresh_count + 1;
  id

(** [redirect e ~old ~new_] makes every consumer of [old] (and the graph
    output list) refer to [new_] instead. The shapes must match. *)
let redirect (e : t) ~(old : int) ~(new_ : int) : unit =
  if not (Shape.equal (shape_of e old) (shape_of e new_)) then
    invalid_arg "Edit.redirect: shape mismatch";
  Hashtbl.replace e.replace old new_

(* Resolve replacement chains (a -> b, b -> c gives a -> c). *)
let resolve (e : t) (id : int) : int =
  let rec go id seen =
    match Hashtbl.find_opt e.replace id with
    | Some id' when not (List.mem id' seen) -> go id' (id :: seen)
    | _ -> id
  in
  go id []

(** [finish e] produces the rewritten graph: replacements applied,
    unreachable nodes dropped, ids renumbered in topological order. *)
let finish (e : t) : Primgraph.t =
  let nbase = Graph.length e.base in
  let total = nbase + e.fresh_count in
  let op_of id =
    if id < nbase then Graph.op e.base id
    else (List.nth e.fresh (e.fresh_count - 1 - (id - nbase))).op
  in
  let inputs_of id =
    let raw =
      if id < nbase then Graph.inputs e.base id
      else (List.nth e.fresh (e.fresh_count - 1 - (id - nbase))).inputs
    in
    List.map (resolve e) raw
  in
  let shape_of_id id = shape_of e id in
  let outputs = List.map (resolve e) e.base.Graph.outputs in
  (* Mark reachable nodes from outputs. *)
  let reachable = Array.make total false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      List.iter mark (inputs_of id)
    end
  in
  List.iter mark outputs;
  (* Topologically order reachable nodes (DFS postorder). *)
  let order = ref [] in
  let visited = Array.make total false in
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter visit (inputs_of id);
      order := id :: !order
    end
  in
  List.iter visit outputs;
  let order = List.rev !order in
  let remap = Hashtbl.create total in
  List.iteri (fun i id -> Hashtbl.replace remap id i) order;
  let b = Graph.Builder.create () in
  List.iter
    (fun id ->
      let inputs = List.map (fun i -> Hashtbl.find remap i) (inputs_of id) in
      ignore (Graph.Builder.add b (op_of id) inputs (shape_of_id id)))
    order;
  Graph.Builder.set_outputs b (List.map (fun i -> Hashtbl.find remap i) outputs);
  Graph.Builder.finish b
