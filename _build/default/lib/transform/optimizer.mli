(** Cost-guided backtracking search over primitive-graph transformations —
    the TASO-style superoptimizer Korch reuses (§2, §3).

    A priority queue of candidate graphs is ordered by a fast cost proxy
    (the sum of per-primitive single-kernel latencies under the GPU cost
    model). The cheapest graph is expanded by applying every rewrite rule
    at every site; results within [alpha] of the best cost are kept —
    TASO's relaxed acceptance, which lets locally-worse graphs enable
    globally-better ones. Terminates via the expansion [budget]. *)

open Ir

type config = {
  spec : Gpu.Spec.t;
  precision : Gpu.Precision.t;
  alpha : float;  (** keep graphs within [alpha × best] cost *)
  budget : int;  (** maximum number of graph expansions *)
  profiler : Gpu.Profiler.config;
}

val default_config : config

(** The rewrite rule registry: reduce→MatMul (Figure 2b), Div⋄MatMul swap,
    shared-operand MatMul merging (Figure 9), transpose movement,
    broadcast movement, layout cancellation. Each rule returns one
    rewritten graph per applicable site; all are semantic identities
    (property-tested). *)
val all_rules : (string * (Primgraph.t -> Primgraph.t list)) list

(** [cost_proxy cfg g] — the search heuristic: fusion-agnostic sum of
    single-primitive kernel latencies. *)
val cost_proxy : config -> Primgraph.t -> float

(** [graph_fingerprint g] — structural hash used to deduplicate the search
    frontier. *)
val graph_fingerprint : Primgraph.t -> string

(** [optimize ?config g] — search for a cheaper equivalent graph; returns
    the best found (possibly [g] itself, CSE/constant-folded). *)
val optimize : ?config:config -> Primgraph.t -> Primgraph.t
