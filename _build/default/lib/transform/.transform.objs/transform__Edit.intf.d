lib/transform/edit.mli: Ir Primgraph Primitive Shape Tensor
