lib/transform/rules_swap.ml: Array Edit Graph Ir Primgraph Primitive Shape Tensor
