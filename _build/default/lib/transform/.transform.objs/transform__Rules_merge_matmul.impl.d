lib/transform/rules_merge_matmul.ml: Array Bitset Edit Graph Ir List Primgraph Primitive Shape Tensor
