lib/transform/rules_reduce_matmul.ml: Array Const Edit Graph Ir Primgraph Primitive Shape Tensor
