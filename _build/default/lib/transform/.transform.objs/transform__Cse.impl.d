lib/transform/cse.ml: Array Const Edit Graph Hashtbl Ir List Primgraph Primitive Printf String Tensor
