lib/transform/rules_broadcast.ml: Array Edit Graph Ir Primgraph Primitive Tensor
