lib/transform/optimizer.mli: Gpu Ir Primgraph
