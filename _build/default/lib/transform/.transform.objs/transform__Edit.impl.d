lib/transform/edit.ml: Array Const Graph Hashtbl Ir List Primgraph Primitive Shape Shape_infer Tensor
