lib/transform/rules_layout_cancel.ml: Array Edit Graph Ir List Option Primgraph Primitive Shape Tensor
