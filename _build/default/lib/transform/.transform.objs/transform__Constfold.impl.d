lib/transform/constfold.ml: Array Const Edit Graph Ir List Option Primgraph Primitive Runtime Shape Tensor
