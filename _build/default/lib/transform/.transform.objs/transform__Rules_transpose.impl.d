lib/transform/rules_transpose.ml: Array Edit Fun Graph Ir Primgraph Primitive Shape Tensor
