(** Layout-primitive cancellation rules.

    Fission and MatMul merging introduce Pad/Slice/Concat/Reshape chains;
    these rules collapse the redundant ones:
    - [Slice (Pad x)] that extracts exactly the original region cancels;
    - [Slice (Concat xs)] that falls inside one piece becomes a slice of
      that piece (or the piece itself);
    - [Reshape (Reshape x)] fuses; an identity Reshape disappears;
    - [Concat] of adjacent [Slice]s covering the whole source cancels. *)

open Ir
open Tensor

let reshape_fuse (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Reshape target, [ inner ] -> begin
        match (Graph.op g inner, Graph.inputs g inner) with
        | Primitive.Reshape _, [ x ] ->
          let e = Edit.of_graph g in
          let replacement =
            if Shape.equal (Graph.shape g x) target then x
            else Edit.add e (Primitive.Reshape target) [ x ]
          in
          Edit.redirect e ~old:nd.Graph.id ~new_:replacement;
          results := Edit.finish e :: !results
        | _ when Shape.equal (Graph.shape g inner) target ->
          (* identity reshape *)
          let e = Edit.of_graph g in
          Edit.redirect e ~old:nd.Graph.id ~new_:inner;
          results := Edit.finish e :: !results
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let slice_of_pad (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Slice { starts; stops }, [ p ] -> begin
        match (Graph.op g p, Graph.inputs g p) with
        | Primitive.Pad { before; _ }, [ x ] ->
          let sx = Graph.shape g x in
          let exact =
            Array.for_all2 ( = ) starts before
            && Array.for_all2 (fun stop (b, d) -> stop = b + d)
                 stops
                 (Array.init (Shape.rank sx) (fun i -> (before.(i), sx.(i))))
          in
          if exact then begin
            let e = Edit.of_graph g in
            Edit.redirect e ~old:nd.Graph.id ~new_:x;
            results := Edit.finish e :: !results
          end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let slice_of_concat (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Slice { starts; stops }, [ c ] -> begin
        match (Graph.op g c, Graph.inputs g c) with
        | Primitive.Concat axis, pieces when pieces <> [] ->
          (* Does the sliced range fall entirely inside one piece, with
             every other axis taken whole? *)
          let sc = Graph.shape g c in
          let full_other_axes =
            Array.for_all
              (fun i -> i = axis || (starts.(i) = 0 && stops.(i) = sc.(i)))
              (Array.init (Shape.rank sc) (fun i -> i))
          in
          if full_other_axes then begin
            let rec locate offset = function
              | [] -> None
              | piece :: rest ->
                let d = (Graph.shape g piece).(axis) in
                if starts.(axis) >= offset && stops.(axis) <= offset + d then
                  Some (piece, offset)
                else locate (offset + d) rest
            in
            match locate 0 pieces with
            | Some (piece, offset) ->
              let sp = Graph.shape g piece in
              let e = Edit.of_graph g in
              let replacement =
                if starts.(axis) = offset && stops.(axis) = offset + sp.(axis) then piece
                else begin
                  let starts' = Array.copy starts and stops' = Array.copy stops in
                  starts'.(axis) <- starts.(axis) - offset;
                  stops'.(axis) <- stops.(axis) - offset;
                  Edit.add e (Primitive.Slice { starts = starts'; stops = stops' }) [ piece ]
                end
              in
              Edit.redirect e ~old:nd.Graph.id ~new_:replacement;
              results := Edit.finish e :: !results
            | None -> ()
          end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let concat_of_slices (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Concat axis -> begin
        (* All pieces are slices of the same source, adjacent along [axis],
           whole along other axes, and together covering the source. *)
        let pieces =
          List.map
            (fun p ->
              match (Graph.op g p, Graph.inputs g p) with
              | Primitive.Slice { starts; stops }, [ src ] -> Some (src, starts, stops)
              | _ -> None)
            nd.Graph.inputs
        in
        if List.for_all Option.is_some pieces then begin
          let pieces = List.map Option.get pieces in
          match pieces with
          | [] -> ()
          | (src0, _, _) :: _ ->
            let s_src = Graph.shape g src0 in
            let r = Shape.rank s_src in
            let whole_other (starts, stops) =
              Array.for_all
                (fun i -> i = axis || (starts.(i) = 0 && stops.(i) = s_src.(i)))
                (Array.init r (fun i -> i))
            in
            let rec adjacent offset = function
              | [] -> offset = s_src.(axis)
              | (src, starts, stops) :: rest ->
                src = src0
                && whole_other (starts, stops)
                && starts.(axis) = offset
                && adjacent stops.(axis) rest
            in
            if axis < r && adjacent 0 pieces then begin
              let e = Edit.of_graph g in
              Edit.redirect e ~old:nd.Graph.id ~new_:src0;
              results := Edit.finish e :: !results
            end
        end
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let apply (g : Primgraph.t) : Primgraph.t list =
  reshape_fuse g @ slice_of_pad g @ slice_of_concat g @ concat_of_slices g
