(** Broadcast-movement rules.

    Broadcast primitives replicate data; pushing them later (or cancelling
    them against reductions) shrinks the tensors that flow between
    kernels:
    - [Binary(Broadcast_k a, Broadcast_k b) -> Broadcast_k (Binary (a, b))]
      performs the arithmetic at pre-broadcast size;
    - [Unary(Broadcast_k a) -> Broadcast_k (Unary a)] likewise;
    - [Reduce_sum_k (Broadcast_k a) -> MulConst d a] — summing what was
      just replicated is a scale;
    - [Reduce_{max,min,mean}_k (Broadcast_k a) -> a] — aggregation undoes
      the replication exactly. *)

open Ir

let unary_through (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Unary u, [ bc ] -> begin
        match (Graph.op g bc, Graph.inputs g bc) with
        | Primitive.Broadcast (axis, size), [ x ] ->
          let e = Edit.of_graph g in
          let u' = Edit.add e (Primitive.Unary u) [ x ] in
          let bc' = Edit.add e (Primitive.Broadcast (axis, size)) [ u' ] in
          Edit.redirect e ~old:nd.Graph.id ~new_:bc';
          results := Edit.finish e :: !results
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let binary_through (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Binary bop, [ l; r ] when l <> r -> begin
        match ((Graph.op g l, Graph.inputs g l), (Graph.op g r, Graph.inputs g r)) with
        | (Primitive.Broadcast (ax1, s1), [ a ]), (Primitive.Broadcast (ax2, s2), [ b ])
          when ax1 = ax2 && s1 = s2
               && Tensor.Shape.equal (Graph.shape g a) (Graph.shape g b) ->
          let e = Edit.of_graph g in
          let op' = Edit.add e (Primitive.Binary bop) [ a; b ] in
          let bc' = Edit.add e (Primitive.Broadcast (ax1, s1)) [ op' ] in
          Edit.redirect e ~old:nd.Graph.id ~new_:bc';
          results := Edit.finish e :: !results
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let reduce_of_broadcast (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match (nd.Graph.op, nd.Graph.inputs) with
      | Primitive.Reduce (agg, rax), [ bc ] -> begin
        match (Graph.op g bc, Graph.inputs g bc) with
        | Primitive.Broadcast (bax, size), [ x ] when rax = bax ->
          let e = Edit.of_graph g in
          let replacement =
            match agg with
            | Primitive.Sum ->
              Edit.add e (Primitive.Unary (Primitive.MulConst (float_of_int size))) [ x ]
            | Mean | Max | Min ->
              (* aggregating identical copies returns the original; insert
                 an identity-preserving no-op so the redirect has a fresh
                 node when x is a source *)
              x
            | Prod ->
              Edit.add e (Primitive.Unary (Primitive.PowConst (float_of_int size))) [ x ]
          in
          Edit.redirect e ~old:nd.Graph.id ~new_:replacement;
          results := Edit.finish e :: !results
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results

let apply (g : Primgraph.t) : Primgraph.t list =
  unary_through g @ binary_through g @ reduce_of_broadcast g
