(** ReduceSum-to-MatMul substitution (§3, Figure 2b, first transformation).

    A last-axis sum of [x : [.., m, n]] equals [x @ ones(n, 1)] reshaped —
    turning a reduce primitive into a linear-transformation primitive that
    subsequent transformations can merge with neighbouring MatMuls. The
    reverse direction is deliberately not generated (it never helps). *)

open Ir
open Tensor

(** [apply g] returns one rewritten graph per applicable site. *)
let apply (g : Primgraph.t) : Primgraph.t list =
  let results = ref [] in
  Array.iter
    (fun nd ->
      match nd.Graph.op with
      | Primitive.Reduce (Primitive.Sum, axis) -> begin
        match Graph.inputs g nd.Graph.id with
        | [ x ] ->
          let sx = Graph.shape g x in
          let r = Shape.rank sx in
          if r >= 2 && axis = r - 1 then begin
            let n = sx.(r - 1) in
            let e = Edit.of_graph g in
            let ones = Edit.add e (Primitive.Constant (Const.ones [| n; 1 |])) [] in
            let mm = Edit.add e Primitive.Matmul [ x; ones ] in
            (* [.., m, 1] -> [.., m] *)
            let target = Shape.drop_axis sx (r - 1) in
            let rs = Edit.add e (Primitive.Reshape target) [ mm ] in
            Edit.redirect e ~old:nd.Graph.id ~new_:rs;
            results := Edit.finish e :: !results
          end
        | _ -> ()
      end
      | _ -> ())
    g.Graph.nodes;
  !results
