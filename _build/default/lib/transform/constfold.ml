(** Constant folding: primitives whose inputs are all constants are
    evaluated at compile time and replaced by [Constant] nodes.

    Folding is size-guarded — materializing a huge broadcast of a constant
    would trade cheap recomputation for memory traffic, so only results up
    to [max_elems] are folded. *)

open Ir
open Tensor

let default_max_elems = 1 lsl 16

(** [run ?max_elems g] folds to fixpoint. *)
let run ?(max_elems = default_max_elems) (g : Primgraph.t) : Primgraph.t =
  let g = ref g in
  let changed = ref true in
  while !changed do
    changed := false;
    let e = Edit.of_graph !g in
    Array.iter
      (fun nd ->
        match nd.Graph.op with
        | Primitive.Input _ | Constant _ | Opaque _ -> ()
        | op ->
          let const_inputs =
            List.map
              (fun i ->
                match Graph.op !g i with Primitive.Constant c -> Some c | _ -> None)
              nd.Graph.inputs
          in
          if
            const_inputs <> []
            && List.for_all Option.is_some const_inputs
            && Shape.numel nd.Graph.shape <= max_elems
          then begin
            let args = List.map (fun c -> Const.materialize (Option.get c)) const_inputs in
            match Runtime.Prim_interp.eval_prim op args with
            | v ->
              let c = Edit.add e (Primitive.Constant (Const.of_nd v)) [] in
              Edit.redirect e ~old:nd.Graph.id ~new_:c;
              changed := true
            | exception _ -> ()
          end)
      !g.Graph.nodes;
    if !changed then g := Edit.finish e
  done;
  !g
