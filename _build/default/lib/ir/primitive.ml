(** Tensor algebra primitives — the four categories of §3.

    Every node of a primitive graph carries one of these. Each primitive has
    a single degree of parallelism and data access pattern, which is what
    makes a per-primitive (or fused multi-primitive) kernel efficient to
    generate. [Input] and [Constant] are source pseudo-primitives: they
    carry graph inputs and weights/constants and are never executed. *)

open Tensor

(** Unary elementwise functions. *)
type unary =
  | Exp
  | Log
  | Sqrt
  | Rsqrt
  | Neg
  | Abs
  | Square
  | Reciprocal
  | Relu
  | LeakyRelu of float
  | Sigmoid
  | Silu
  | Mish
  | Tanh
  | Erf
  | Gelu
  | AddConst of float
  | MulConst of float
  | PowConst of float
  | Clip of float * float

(** Binary elementwise functions (with broadcasting). *)
type binary = Add | Sub | Mul | Div | Max | Min | Pow

(** Reduction aggregators, shared with {!Tensor.Ops_reduce.agg}. *)
type agg = Ops_reduce.agg = Sum | Mean | Max | Min | Prod

type t =
  | Input of string  (** named graph input (activations or weights fed at run time) *)
  | Constant of Const.t  (** embedded constant (weights, ones vectors, ...) *)
  | Unary of unary
  | Binary of binary
  | Reduce of agg * int  (** aggregate along an axis, dropping it *)
  | Broadcast of int * int  (** insert axis [k] of size [d] and replicate *)
  | Pool of { agg : agg; kernel : int * int; stride : int * int; padding : int * int }
      (** windowed reduction on NCHW (MaxPool/AvgPool), reduce category *)
  | Transpose of int array
  | Reshape of Shape.t
  | Pad of { before : int array; after : int array; value : float }
  | Slice of { starts : int array; stops : int array }
  | Concat of int
  | Matmul  (** 2-d or batched matrix multiplication with broadcast batching *)
  | Conv of { stride : int * int; padding : int * int }
      (** NCHW convolution, weight OIHW as second input *)
  | Upsample of int  (** nearest-neighbour spatial upsampling (linear) *)
  | Opaque of string  (** unsupported operator kept opaque (e.g. TopK), §3 *)

(** The four categories of §3, plus sources and opaque nodes. *)
type category =
  | Elementwise
  | Reduction
  | Broadcasting
  | Layout
  | Linear
  | Source
  | Unknown

let category : t -> category = function
  | Input _ | Constant _ -> Source
  | Unary _ | Binary _ -> Elementwise
  | Reduce _ | Pool _ -> Reduction
  | Broadcast _ | Upsample _ -> Broadcasting
  | Transpose _ | Reshape _ | Pad _ | Slice _ | Concat _ -> Layout
  | Matmul | Conv _ -> Linear
  | Opaque _ -> Unknown

let category_to_string = function
  | Elementwise -> "elementwise"
  | Reduction -> "reduce"
  | Broadcasting -> "broadcast"
  | Layout -> "layout"
  | Linear -> "linear"
  | Source -> "source"
  | Unknown -> "opaque"

(** [is_linear p] — linear transformation primitives are the
    compute-intensive ones lowered to vendor libraries (§5.2). *)
let is_linear p = category p = Linear

let is_source p = category p = Source

let unary_to_string = function
  | Exp -> "exp" | Log -> "log" | Sqrt -> "sqrt" | Rsqrt -> "rsqrt" | Neg -> "neg"
  | Abs -> "abs" | Square -> "square" | Reciprocal -> "recip" | Relu -> "relu"
  | LeakyRelu a -> Printf.sprintf "leaky_relu(%g)" a
  | Sigmoid -> "sigmoid" | Silu -> "silu" | Mish -> "mish" | Tanh -> "tanh"
  | Erf -> "erf" | Gelu -> "gelu"
  | AddConst c -> Printf.sprintf "add_const(%g)" c
  | MulConst c -> Printf.sprintf "mul_const(%g)" c
  | PowConst c -> Printf.sprintf "pow_const(%g)" c
  | Clip (lo, hi) -> Printf.sprintf "clip(%g,%g)" lo hi

let binary_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div"
  | Max -> "max" | Min -> "min" | Pow -> "pow"

let to_string : t -> string = function
  | Input name -> Printf.sprintf "input(%s)" name
  | Constant c -> Const.to_string c
  | Unary u -> unary_to_string u
  | Binary b -> binary_to_string b
  | Reduce (agg, ax) -> Printf.sprintf "reduce_%s(axis=%d)" (Ops_reduce.agg_to_string agg) ax
  | Broadcast (ax, d) -> Printf.sprintf "broadcast(axis=%d,size=%d)" ax d
  | Pool p ->
    let kh, kw = p.kernel in
    Printf.sprintf "pool_%s(%dx%d)" (Ops_reduce.agg_to_string p.agg) kh kw
  | Transpose perm ->
    Printf.sprintf "transpose(%s)"
      (String.concat "," (Array.to_list (Array.map string_of_int perm)))
  | Reshape s -> Printf.sprintf "reshape%s" (Shape.to_string s)
  | Pad { before; after; value } ->
    let arr a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
    Printf.sprintf "pad(%s|%s|%g)" (arr before) (arr after) value
  | Slice { starts; stops } ->
    let arr a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
    Printf.sprintf "slice(%s..%s)" (arr starts) (arr stops)
  | Concat ax -> Printf.sprintf "concat(axis=%d)" ax
  | Matmul -> "matmul"
  | Conv c ->
    let sh, sw = c.stride and ph, pw = c.padding in
    Printf.sprintf "conv(s=%dx%d,p=%dx%d)" sh sw ph pw
  | Upsample s -> Printf.sprintf "upsample(x%d)" s
  | Opaque name -> Printf.sprintf "opaque(%s)" name

let pp ppf p = Format.pp_print_string ppf (to_string p)

(** Representative operators per category, Table 1. *)
let table1 : (category * string list) list =
  [ (Elementwise, [ "Add"; "Sub"; "Mul"; "Div"; "Relu"; "Sqrt"; "Erf" ]);
    (Reduction, [ "ReduceSum"; "ReduceMean"; "MaxPool" ]);
    (Broadcasting, [ "Broadcast"; "Upsample" ]);
    (Layout, [ "Transpose"; "Split"; "Concat"; "Slice"; "Pad"; "Reshape" ]);
    (Linear, [ "Conv"; "GEMM"; "Batched GEMM" ]) ]
