(** Operator-level vocabulary for computation graphs.

    This is the representation existing frameworks fuse at (§1): nodes are
    whole DNN operators (Softmax, InstanceNorm, Conv, ...). Korch's
    operator fission engine (lib/fission) lowers these to
    {!Primitive.t} graphs. *)

open Tensor

type t =
  | Input of string
  | Constant of Const.t
  (* Activations and unary elementwise operators *)
  | Relu
  | LeakyRelu of float
  | Sigmoid
  | Silu
  | Mish
  | Tanh
  | Gelu  (** decomposed by fission into erf-based elementwise chain *)
  | Erf
  | Exp
  | Log
  | Sqrt
  | Neg
  | Square
  (* Binary elementwise *)
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  (* Composite / normalization operators (fission targets) *)
  | Softmax of int  (** softmax along the given axis *)
  | InstanceNorm of float  (** per-channel spatial normalization, NCHW, eps *)
  | LayerNorm of float  (** normalization over the last axis, eps *)
  | BatchNormInference of float
      (** inference-mode batch norm: inputs x, scale, bias, mean, var *)
  (* Reductions *)
  | ReduceSum of { axis : int; keepdims : bool }
  | ReduceMean of { axis : int; keepdims : bool }
  | ReduceMax of { axis : int; keepdims : bool }
  | MaxPool of { kernel : int * int; stride : int * int; padding : int * int }
  | AvgPool of { kernel : int * int; stride : int * int; padding : int * int }
  | GlobalAvgPool
  (* Layout *)
  | Transpose of int array
  | Reshape of Shape.t
  | Pad of { before : int array; after : int array; value : float }
  | Slice of { starts : int array; stops : int array }
  | Concat of int
  (* Linear *)
  | MatMul  (** 2-d or broadcast-batched matrix multiplication *)
  | Conv of { stride : int * int; padding : int * int; bias : bool }
      (** inputs: x, weight[, bias] *)
  | Upsample of int
  (* Opaque *)
  | TopK of int  (** kept opaque, §3 "Supporting new operators" *)

let to_string : t -> string = function
  | Input name -> Printf.sprintf "Input(%s)" name
  | Constant c -> Const.to_string c
  | Relu -> "Relu"
  | LeakyRelu a -> Printf.sprintf "LeakyRelu(%g)" a
  | Sigmoid -> "Sigmoid"
  | Silu -> "Silu"
  | Mish -> "Mish"
  | Tanh -> "Tanh"
  | Gelu -> "Gelu"
  | Erf -> "Erf"
  | Exp -> "Exp"
  | Log -> "Log"
  | Sqrt -> "Sqrt"
  | Neg -> "Neg"
  | Square -> "Square"
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Div -> "Div"
  | Pow -> "Pow"
  | Softmax ax -> Printf.sprintf "Softmax(axis=%d)" ax
  | InstanceNorm eps -> Printf.sprintf "InstanceNorm(eps=%g)" eps
  | LayerNorm eps -> Printf.sprintf "LayerNorm(eps=%g)" eps
  | BatchNormInference eps -> Printf.sprintf "BatchNorm(eps=%g)" eps
  | ReduceSum r -> Printf.sprintf "ReduceSum(axis=%d,keepdims=%b)" r.axis r.keepdims
  | ReduceMean r -> Printf.sprintf "ReduceMean(axis=%d,keepdims=%b)" r.axis r.keepdims
  | ReduceMax r -> Printf.sprintf "ReduceMax(axis=%d,keepdims=%b)" r.axis r.keepdims
  | MaxPool p ->
    let kh, kw = p.kernel in
    Printf.sprintf "MaxPool(%dx%d)" kh kw
  | AvgPool p ->
    let kh, kw = p.kernel in
    Printf.sprintf "AvgPool(%dx%d)" kh kw
  | GlobalAvgPool -> "GlobalAvgPool"
  | Transpose perm ->
    Printf.sprintf "Transpose(%s)"
      (String.concat "," (Array.to_list (Array.map string_of_int perm)))
  | Reshape s -> Printf.sprintf "Reshape%s" (Shape.to_string s)
  | Pad _ -> "Pad"
  | Slice _ -> "Slice"
  | Concat ax -> Printf.sprintf "Concat(axis=%d)" ax
  | MatMul -> "MatMul"
  | Conv c ->
    let sh, sw = c.stride and ph, pw = c.padding in
    Printf.sprintf "Conv(s=%dx%d,p=%dx%d%s)" sh sw ph pw (if c.bias then ",bias" else "")
  | Upsample s -> Printf.sprintf "Upsample(x%d)" s
  | TopK k -> Printf.sprintf "TopK(%d)" k

let pp ppf t = Format.pp_print_string ppf (to_string t)
