(** Operator-level computation graphs (the optimizer input, Figure 1). *)

type t = Optype.t Graph.t

let pp = Graph.pp Optype.pp

(** Builder with automatic shape inference. *)
module B = struct
  type b = Optype.t Graph.Builder.t

  let create () : b = Graph.Builder.create ()

  (** [input b name shape] adds a named graph input. *)
  let input b name shape = Graph.Builder.add b (Optype.Input name) [] shape

  (** [const b c] embeds a constant. *)
  let const b (c : Const.t) = Graph.Builder.add b (Optype.Constant c) [] c.Const.shape

  (** [randn_weight b shape seed] embeds a deterministic random weight. *)
  let randn_weight b shape seed = const b (Const.randn shape seed)

  (** [add b op inputs] appends an operator node, inferring its shape. *)
  let add (b : b) (op : Optype.t) (inputs : int list) : int =
    let shapes = List.map (Graph.Builder.shape_of b) inputs in
    let shape = Shape_infer.op op shapes in
    Graph.Builder.add b op inputs shape

  let shape_of = Graph.Builder.shape_of
  let set_outputs = Graph.Builder.set_outputs
  let finish = Graph.Builder.finish
end
