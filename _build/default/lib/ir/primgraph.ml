(** Primitive graphs — the representation Korch orchestrates (§3, §4). *)

open Tensor

type t = Primitive.t Graph.t

let pp = Graph.pp Primitive.pp

(** [count_category g cat] counts nodes of the given primitive category. *)
let count_category (g : t) (cat : Primitive.category) =
  Array.fold_left
    (fun acc nd -> if Primitive.category nd.Graph.op = cat then acc + 1 else acc)
    0 g.Graph.nodes

(** [non_source_nodes g] lists ids of executable (non-Input/Const) nodes. *)
let non_source_nodes (g : t) : int list =
  Array.to_list g.Graph.nodes
  |> List.filter_map (fun nd ->
         if Primitive.is_source nd.Graph.op then None else Some nd.Graph.id)

(** Builder with automatic shape inference. *)
module B = struct
  type b = Primitive.t Graph.Builder.t

  let create () : b = Graph.Builder.create ()

  (** [input b name shape] adds a named graph input. *)
  let input b name shape = Graph.Builder.add b (Primitive.Input name) [] shape

  (** [const b c] embeds a constant. *)
  let const b (c : Const.t) = Graph.Builder.add b (Primitive.Constant c) [] c.Const.shape

  (** [add b p inputs] appends a primitive node, inferring its shape. *)
  let add (b : b) (p : Primitive.t) (inputs : int list) : int =
    let shapes = List.map (Graph.Builder.shape_of b) inputs in
    let shape = Shape_infer.prim p shapes in
    Graph.Builder.add b p inputs shape

  (** [add_raw b p inputs shape] appends a node with an explicit shape (for
      opaque primitives whose shapes cannot be inferred). *)
  let add_raw (b : b) (p : Primitive.t) (inputs : int list) (shape : Shape.t) : int =
    Graph.Builder.add b p inputs shape

  let shape_of = Graph.Builder.shape_of
  let set_outputs = Graph.Builder.set_outputs
  let finish = Graph.Builder.finish
end
