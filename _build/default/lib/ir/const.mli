(** Constant tensor specifications.

    Model weights and transformation-introduced constants (e.g. the
    all-ones vector that turns ReduceSum into a MatMul, §3/Figure 2) are
    described symbolically so cost-model-only pipelines never allocate
    paper-scale tensors; the executor materializes them on demand. *)

open Tensor

type fill =
  | Zeros
  | Ones
  | Value of float  (** constant fill *)
  | Randn of int  (** deterministic standard-normal data from a seed *)
  | Randn_scaled of int * float  (** seeded normal data times a factor *)
  | Data of Nd.t  (** explicit payload *)

type t = { shape : Shape.t; fill : fill }

val zeros : Shape.t -> t
val ones : Shape.t -> t
val value : Shape.t -> float -> t
val randn : Shape.t -> int -> t

(** [randn_scaled shape seed scale] — e.g. 1/√fan-in initialisation. *)
val randn_scaled : Shape.t -> int -> float -> t

val of_nd : Nd.t -> t

(** Produce the concrete tensor (deterministic for seeded fills). *)
val materialize : t -> Nd.t

(** Structural equality; [Data] payloads compare elementwise. *)
val equal : t -> t -> bool

val to_string : t -> string
