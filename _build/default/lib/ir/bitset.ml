(** Fixed-capacity bitsets over node ids.

    Execution states (Definition 2) and convex subgraphs (Definition 1) are
    node sets; the kernel identifier manipulates thousands of them, so a
    compact immutable representation with fast hash/compare matters. *)

type t = { width : int; words : int array }

let words_for width = (width + 62) / 63

(** [empty width] is the empty set over a universe of [width] nodes. *)
let empty width = { width; words = Array.make (words_for width) 0 }

let check_bounds t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of bounds"

(** [mem t i] tests membership. *)
let mem t i =
  check_bounds t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

(** [add t i] is [t] with [i] inserted (persistent). *)
let add t i =
  check_bounds t i;
  let words = Array.copy t.words in
  words.(i / 63) <- words.(i / 63) lor (1 lsl (i mod 63));
  { t with words }

(** [remove t i] is [t] without [i] (persistent). *)
let remove t i =
  check_bounds t i;
  let words = Array.copy t.words in
  words.(i / 63) <- words.(i / 63) land lnot (1 lsl (i mod 63));
  { t with words }

let lift2 f a b =
  if a.width <> b.width then invalid_arg "Bitset: width mismatch";
  { width = a.width; words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union = lift2 ( lor )
let inter = lift2 ( land )

(** [diff a b] is set difference [a \ b]. *)
let diff = lift2 (fun x y -> x land lnot y)

let equal a b = a.width = b.width && a.words = b.words

(** [subset a b] tests [a ⊆ b]. *)
let subset a b =
  a.width = b.width
  && Array.for_all2 (fun x y -> x land lnot y = 0) a.words b.words

(** [is_empty t] tests emptiness. *)
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
  go w 0

(** [cardinal t] is the number of members. *)
let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

(** [iter f t] applies [f] to every member in increasing order. *)
let iter f t =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

(** [fold f t init] folds over members in increasing order. *)
let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

(** [elements t] lists members in increasing order. *)
let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

(** [of_list width l] builds a set from a list of indices. *)
let of_list width l = List.fold_left add (empty width) l

(** [full width] is the universe set. *)
let full width = of_list width (List.init width (fun i -> i))

let hash t = Hashtbl.hash t.words

let to_string t =
  "{" ^ String.concat "," (List.map string_of_int (elements t)) ^ "}"

(** First-class hashtable key module. *)
module Key = struct
  type nonrec t = t
  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Key)
