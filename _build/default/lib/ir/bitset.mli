(** Fixed-capacity persistent bitsets over node ids.

    Execution states (Definition 2) and convex subgraphs (Definition 1)
    are node sets; the kernel identifier manipulates thousands of them, so
    a compact representation with O(words) set algebra and fast
    hash/compare matters. All operations are persistent ([add] returns a
    new set). *)

type t

(** [empty width] — the empty set over a universe of [width] nodes. All
    arguments to binary operations must share the same width. *)
val empty : int -> t

(** [full width] — the universe set. *)
val full : int -> t

(** [of_list width l] — build from a list of indices (duplicates fine). *)
val of_list : int -> int list -> t

(** Membership test. Raises [Invalid_argument] out of bounds. *)
val mem : t -> int -> bool

val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] — set difference [a \ b] (Theorem 1's kernel constructor). *)
val diff : t -> t -> t

val equal : t -> t -> bool

(** [subset a b] — [a ⊆ b]. *)
val subset : t -> t -> bool

val is_empty : t -> bool
val cardinal : t -> int

(** Iteration in increasing index order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Members in increasing order. *)
val elements : t -> int list

val hash : t -> int
val to_string : t -> string

(** First-class hashtable key module and a prebuilt hashtable. *)
module Key : Hashtbl.HashedType with type t = t

module Table : Hashtbl.S with type key = t
