(** Constant tensor specifications.

    Model weights and transformation-introduced constants (e.g. the
    all-ones vector that turns ReduceSum into a MatMul, §3/Figure 2) are
    described symbolically so that cost-model-only pipelines never allocate
    paper-scale tensors; the executor materializes them on demand. *)

open Tensor

type fill =
  | Zeros
  | Ones
  | Value of float
  | Randn of int  (** deterministic normal data from the given seed *)
  | Randn_scaled of int * float
      (** deterministic normal data scaled by a factor (e.g. 1/sqrt fan-in) *)
  | Data of Nd.t  (** explicit payload *)

type t = { shape : Shape.t; fill : fill }

let zeros shape = { shape; fill = Zeros }
let ones shape = { shape; fill = Ones }
let value shape v = { shape; fill = Value v }
let randn shape seed = { shape; fill = Randn seed }
let randn_scaled shape seed scale = { shape; fill = Randn_scaled (seed, scale) }
let of_nd (nd : Nd.t) = { shape = Nd.shape nd; fill = Data nd }

(** [materialize c] produces the concrete tensor. *)
let materialize (c : t) : Nd.t =
  match c.fill with
  | Zeros -> Nd.zeros c.shape
  | Ones -> Nd.ones c.shape
  | Value v -> Nd.full c.shape v
  | Randn seed -> Nd.randn (Rng.create seed) c.shape
  | Randn_scaled (seed, scale) ->
    let rng = Rng.create seed in
    Nd.create c.shape (fun _ -> scale *. Rng.normal rng)
  | Data nd -> nd

let equal (a : t) (b : t) =
  Shape.equal a.shape b.shape
  &&
  match (a.fill, b.fill) with
  | Zeros, Zeros | Ones, Ones -> true
  | Value x, Value y -> x = y
  | Randn x, Randn y -> x = y
  | Randn_scaled (x, s), Randn_scaled (y, t) -> x = y && s = t
  | Data x, Data y -> Nd.equal x y
  | _ -> false

let to_string (c : t) =
  let fill =
    match c.fill with
    | Zeros -> "zeros"
    | Ones -> "ones"
    | Value v -> Printf.sprintf "%g" v
    | Randn s -> Printf.sprintf "randn#%d" s
    | Randn_scaled (s, f) -> Printf.sprintf "randn#%d*%g" s f
    | Data _ -> "data"
  in
  Printf.sprintf "const%s(%s)" (Shape.to_string c.shape) fill
