lib/ir/const.ml: Nd Printf Rng Shape Tensor
