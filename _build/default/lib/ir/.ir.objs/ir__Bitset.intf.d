lib/ir/bitset.mli: Hashtbl
