lib/ir/opgraph.ml: Const Graph List Optype Shape_infer
