lib/ir/primitive.ml: Array Const Format Ops_reduce Printf Shape String Tensor
