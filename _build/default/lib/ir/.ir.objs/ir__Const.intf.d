lib/ir/const.mli: Nd Shape Tensor
