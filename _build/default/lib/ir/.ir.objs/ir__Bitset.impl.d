lib/ir/bitset.ml: Array Hashtbl List String
