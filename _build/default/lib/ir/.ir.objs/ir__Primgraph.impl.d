lib/ir/primgraph.ml: Array Const Graph List Primitive Shape Shape_infer Tensor
