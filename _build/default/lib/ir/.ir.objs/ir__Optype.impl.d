lib/ir/optype.ml: Array Const Format Printf Shape String Tensor
