lib/ir/shape_infer.ml: Array Const List Optype Primitive Printf Shape Tensor
