lib/ir/graph.ml: Array Bitset Format Fun Hashtbl Int List Queue Set Shape String Tensor
