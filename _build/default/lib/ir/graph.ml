(** Generic single-output-per-node DAGs.

    Both the operator-level computation graph and the primitive graph are
    instances of this structure: each node produces exactly one tensor (the
    paper's simplifying assumption, §3 footnote 1), [inputs] lists producer
    node ids in argument order (duplicates allowed), and [outputs] names the
    graph's result nodes. *)

open Tensor

type 'op node = { id : int; op : 'op; inputs : int list; shape : Shape.t }

type 'op t = { nodes : 'op node array; outputs : int list }

(** [length g] is the number of nodes. *)
let length g = Array.length g.nodes

(** [node g i] is the node with id [i]. *)
let node g i = g.nodes.(i)

(** [op g i] is the operator of node [i]. *)
let op g i = g.nodes.(i).op

(** [shape g i] is the output shape of node [i]. *)
let shape g i = g.nodes.(i).shape

(** [inputs g i] are the producer ids of node [i] in argument order. *)
let inputs g i = g.nodes.(i).inputs

(** [succs g] is the successor adjacency (deduplicated): [succs.(i)] lists
    nodes that consume node [i]'s output. *)
let succs g : int list array =
  let n = length g in
  let out = Array.make n [] in
  Array.iter
    (fun nd ->
      List.iter
        (fun p -> if not (List.mem nd.id out.(p)) then out.(p) <- nd.id :: out.(p))
        nd.inputs)
    g.nodes;
  Array.map List.rev out

(** [preds g i] are the deduplicated producers of node [i]. *)
let preds g i = List.sort_uniq compare (inputs g i)

(** [validate g] checks ids are positional, inputs reference earlier-defined
    nodes only if acyclic (checked via topological sort), and outputs are in
    range. Raises [Invalid_argument] on violation. *)
let validate g =
  let n = length g in
  Array.iteri
    (fun i nd ->
      if nd.id <> i then invalid_arg "Graph.validate: node id mismatch";
      List.iter
        (fun p -> if p < 0 || p >= n then invalid_arg "Graph.validate: dangling input")
        nd.inputs)
    g.nodes;
  List.iter
    (fun o -> if o < 0 || o >= n then invalid_arg "Graph.validate: dangling output")
    g.outputs;
  (* Kahn's algorithm detects cycles. *)
  let indeg = Array.make n 0 in
  Array.iter (fun nd -> indeg.(nd.id) <- List.length (preds g nd.id)) g.nodes;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let visited = ref 0 in
  let sc = succs g in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr visited;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      sc.(v)
  done;
  if !visited <> n then invalid_arg "Graph.validate: cycle detected"

(** [topo_order g] is a topological ordering of node ids (Kahn, stable by
    id for determinism). *)
let topo_order g : int list =
  let n = length g in
  let indeg = Array.make n 0 in
  Array.iter (fun nd -> indeg.(nd.id) <- List.length (preds g nd.id)) g.nodes;
  let sc = succs g in
  let module IntSet = Set.Make (Int) in
  let ready = ref (IntSet.of_list (List.filter (fun i -> indeg.(i) = 0) (List.init n Fun.id))) in
  let order = ref [] in
  while not (IntSet.is_empty !ready) do
    let v = IntSet.min_elt !ready in
    ready := IntSet.remove v !ready;
    order := v :: !order;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then ready := IntSet.add w !ready)
      sc.(v)
  done;
  let order = List.rev !order in
  if List.length order <> n then invalid_arg "Graph.topo_order: cycle detected";
  order

(** [descendants g i] is the set of nodes reachable from [i] (excluding
    [i]). *)
let descendants g i : Bitset.t =
  let n = length g in
  let sc = succs g in
  let seen = ref (Bitset.empty n) in
  let rec go v =
    List.iter
      (fun w ->
        if not (Bitset.mem !seen w) then begin
          seen := Bitset.add !seen w;
          go w
        end)
      sc.(v)
  in
  go i;
  !seen

(** [ancestors g i] is the set of nodes from which [i] is reachable
    (excluding [i]). *)
let ancestors g i : Bitset.t =
  let n = length g in
  let seen = ref (Bitset.empty n) in
  let rec go v =
    List.iter
      (fun w ->
        if not (Bitset.mem !seen w) then begin
          seen := Bitset.add !seen w;
          go w
        end)
      (preds g v)
  in
  go i;
  !seen

(** [is_execution_state g s] tests Definition 2: [s] is downward closed
    under the dependency relation (every predecessor of a member is a
    member). *)
let is_execution_state g (s : Bitset.t) =
  Bitset.fold (fun i ok -> ok && List.for_all (fun p -> Bitset.mem s p) (preds g i)) s true

(** [is_convex g s] tests Definition 1 directly: no path leaves [s] and
    re-enters it. O(|s| * |E|); used as the test oracle for Theorem 1. *)
let is_convex g (s : Bitset.t) =
  let n = length g in
  let sc = succs g in
  (* Mark outside nodes reachable from [s] via paths whose intermediate
     nodes all lie outside [s]; if any marked node feeds back into [s], a
     path leaves and re-enters [s], violating convexity. (A path that
     re-enters and exits again is already caught at its first re-entry.) *)
  let outside_reach = Array.make n false in
  let rec mark_outside v =
    if not outside_reach.(v) then begin
      outside_reach.(v) <- true;
      List.iter (fun w -> if not (Bitset.mem s w) then mark_outside w) sc.(v)
    end
  in
  Bitset.iter
    (fun v -> List.iter (fun w -> if not (Bitset.mem s w) then mark_outside w) sc.(v))
    s;
  let ok = ref true in
  for v = 0 to n - 1 do
    if outside_reach.(v) then
      List.iter (fun w -> if Bitset.mem s w then ok := false) sc.(v)
  done;
  !ok

(** [map_ops f g] rewrites every node operator in place-preserving order. *)
let map_ops f g = { g with nodes = Array.map (fun nd -> { nd with op = f nd.op }) g.nodes }

(** [boundary_outputs g s] lists members of [s] whose output is consumed
    outside [s] or is a graph output — the canonical "possible output set"
    of Definition 3 plus graph outputs. *)
let boundary_outputs g (s : Bitset.t) : int list =
  let sc = succs g in
  Bitset.fold
    (fun i acc ->
      let escapes = List.exists (fun w -> not (Bitset.mem s w)) sc.(i) in
      let is_output = List.mem i g.outputs in
      if escapes || is_output then i :: acc else acc)
    s []
  |> List.rev

(** [external_inputs g s] lists producer ids outside [s] feeding nodes
    inside [s] (deduplicated, increasing). *)
let external_inputs g (s : Bitset.t) : int list =
  Bitset.fold
    (fun i acc ->
      List.fold_left
        (fun acc p -> if Bitset.mem s p then acc else p :: acc)
        acc (inputs g i))
    s []
  |> List.sort_uniq compare

(** A mutable builder for graphs. *)
module Builder = struct
  type 'op t = {
    mutable rev_nodes : 'op node list;
    mutable count : int;
    mutable outs : int list;
    shapes : (int, Shape.t) Hashtbl.t;
  }

  let create () = { rev_nodes = []; count = 0; outs = []; shapes = Hashtbl.create 64 }

  (** [add b op inputs shape] appends a node and returns its id. *)
  let add b op inputs shape =
    let id = b.count in
    b.rev_nodes <- { id; op; inputs; shape } :: b.rev_nodes;
    Hashtbl.replace b.shapes id shape;
    b.count <- b.count + 1;
    id

  (** [shape_of b id] is the output shape of an already-added node. *)
  let shape_of b id =
    match Hashtbl.find_opt b.shapes id with
    | Some s -> s
    | None -> invalid_arg "Graph.Builder.shape_of: unknown node id"

  (** [set_outputs b ids] declares the graph outputs. *)
  let set_outputs b ids = b.outs <- ids

  (** [finish b] freezes and validates the graph. *)
  let finish b =
    let g = { nodes = Array.of_list (List.rev b.rev_nodes); outputs = b.outs } in
    validate g;
    g
end

(** [pp pp_op ppf g] prints one node per line. *)
let pp pp_op ppf g =
  Array.iter
    (fun nd ->
      Format.fprintf ppf "%3d: %a%s <- (%s)%s@."
        nd.id pp_op nd.op (Shape.to_string nd.shape)
        (String.concat ", " (List.map string_of_int nd.inputs))
        (if List.mem nd.id g.outputs then "  [output]" else ""))
    g.nodes
