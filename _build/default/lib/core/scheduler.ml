(** Sequencing selected kernels (executable generation, §5.3).

    The BLP guarantees every needed tensor has a publisher but not that a
    deadlock-free order exists (two selected kernels may feed each other).
    The greedy list scheduler below runs any kernel whose external inputs
    are available; if it gets stuck, the remaining kernel set is returned
    so the orchestrator can add a no-good cut and re-solve. *)

open Ir

(** [schedule g candidates ~selected] — order the selected candidate
    indices so every kernel's external inputs are published before it
    runs. [Error stuck] lists the unschedulable remainder. *)
let schedule (g : Primgraph.t) (candidates : Candidate.t array) ~(selected : int list) :
    (int list, int list) result =
  let available = Hashtbl.create 64 in
  Array.iter
    (fun nd -> if Primitive.is_source nd.Graph.op then Hashtbl.replace available nd.Graph.id ())
    g.Graph.nodes;
  let remaining = ref selected in
  let order = ref [] in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    let runnable, blocked =
      List.partition
        (fun k ->
          List.for_all
            (fun j -> Hashtbl.mem available j)
            candidates.(k).Candidate.ext_inputs)
        !remaining
    in
    if runnable <> [] then begin
      progress := true;
      List.iter
        (fun k ->
          order := k :: !order;
          List.iter (fun o -> Hashtbl.replace available o ()) candidates.(k).Candidate.outputs)
        runnable;
      remaining := blocked
    end
  done;
  if !remaining = [] then Ok (List.rev !order) else Error !remaining
