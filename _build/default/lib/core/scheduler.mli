(** Sequencing selected kernels (executable generation, §5.3).

    The BLP guarantees every needed tensor a publisher but not that a
    deadlock-free order exists: two selected kernels may feed each other
    (expressible in Eq. 4, not executable). The greedy list scheduler runs
    any kernel whose external inputs are available; a stuck remainder is
    returned so the orchestrator can add a no-good cut and re-solve. *)

open Ir

(** [schedule g candidates ~selected] — order the selected candidate
    indices so that every kernel's external inputs are published before it
    runs. [Error stuck] lists the unschedulable remainder (each of its
    members waits on a tensor only another stuck member publishes). *)
val schedule :
  Primgraph.t -> Candidate.t array -> selected:int list -> (int list, int list) result
