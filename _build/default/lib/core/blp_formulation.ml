(** The binary-linear-programming formulation of kernel orchestration
    (§4.2, Equations 2–4).

    One binary variable per candidate. The objective is the sum of selected
    kernels' latencies (Eq. 2). Output constraints (Eq. 3) force every
    graph output primitive to be published; dependency constraints (Eq. 4)
    force every external input of a selected kernel to be published by
    some selected kernel. Source nodes (graph inputs and constants) are
    always available and generate no constraints.

    [extra_cuts] carries no-good cuts added by the orchestrator when a BLP
    solution admits no deadlock-free schedule (mutually-dependent kernel
    pairs are expressible in Eq. 4 but not executable; see
    {!Scheduler}). *)

open Ir

(** [build ?disjoint g candidates ~extra_cuts] — the BLP instance. With
    [disjoint] (ablation of §4.2's redundancy relaxation) every primitive
    may be *executed* at most once: selected kernels must not overlap, the
    restriction all prior tensor program optimizers operate under. *)
let build ?(disjoint = false) (g : Primgraph.t) (candidates : Candidate.t array)
    ~(extra_cuts : int list list) : Lp.Ilp.problem =
  let m = Array.length candidates in
  let minimize = Array.map (fun (c : Candidate.t) -> c.Candidate.latency_us) candidates in
  (* publishers.(j) = candidate indices publishing primitive j. *)
  let publishers = Array.make (Graph.length g) [] in
  Array.iteri
    (fun i (c : Candidate.t) ->
      List.iter (fun j -> publishers.(j) <- i :: publishers.(j)) c.Candidate.outputs)
    candidates;
  let rows = ref [] in
  (* Eq. 3: output covering. *)
  List.iter
    (fun j ->
      if not (Primitive.is_source (Graph.op g j)) then begin
        let row = Array.make m 0.0 in
        List.iter (fun i -> row.(i) <- 1.0) publishers.(j);
        rows := (row, Lp.Simplex.Ge, 1.0) :: !rows
      end)
    g.Graph.outputs;
  (* Eq. 4: dependencies. One row per (kernel, non-source external input). *)
  Array.iteri
    (fun k (c : Candidate.t) ->
      List.iter
        (fun j ->
          if not (Primitive.is_source (Graph.op g j)) then begin
            let row = Array.make m 0.0 in
            List.iter (fun i -> row.(i) <- 1.0) publishers.(j);
            row.(k) <- row.(k) -. 1.0;
            rows := (row, Lp.Simplex.Ge, 0.0) :: !rows
          end)
        c.Candidate.ext_inputs)
    candidates;
  (* Disjointness ablation: each primitive executed at most once. *)
  if disjoint then begin
    let executors = Array.make (Graph.length g) [] in
    Array.iteri
      (fun i (c : Candidate.t) ->
        Bitset.iter (fun j -> executors.(j) <- i :: executors.(j)) c.Candidate.members)
      candidates;
    Array.iteri
      (fun _j execs ->
        match execs with
        | [] | [ _ ] -> ()
        | execs ->
          let row = Array.make m 0.0 in
          List.iter (fun i -> row.(i) <- 1.0) execs;
          rows := (row, Lp.Simplex.Le, 1.0) :: !rows)
      executors
  end;
  (* No-good cuts: sum_{k in S} u_k <= |S| - 1. *)
  List.iter
    (fun cut ->
      let row = Array.make m 0.0 in
      List.iter (fun k -> row.(k) <- 1.0) cut;
      rows := (row, Lp.Simplex.Le, float_of_int (List.length cut - 1)) :: !rows)
    extra_cuts;
  { Lp.Ilp.minimize; rows = List.rev !rows }
