lib/core/kernel_identifier.ml: Array Bitset Candidate Exec_state Gpu Graph Hashtbl Ir List Primgraph
