lib/core/scheduler.mli: Candidate Ir Primgraph
