lib/core/partition.mli: Ir Primgraph
