lib/core/kernel_identifier.mli: Candidate Gpu Ir Primgraph
