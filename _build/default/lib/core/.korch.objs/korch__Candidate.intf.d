lib/core/candidate.mli: Bitset Format Gpu Ir
