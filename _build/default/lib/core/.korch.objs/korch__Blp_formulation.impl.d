lib/core/blp_formulation.ml: Array Bitset Candidate Graph Ir List Lp Primgraph Primitive
