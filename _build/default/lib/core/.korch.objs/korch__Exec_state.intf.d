lib/core/exec_state.mli: Bitset Ir Primgraph
