lib/core/report.ml: Format List Orchestrator Runtime
