lib/core/blp_formulation.mli: Candidate Ir Lp Primgraph
