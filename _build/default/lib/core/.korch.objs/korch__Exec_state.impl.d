lib/core/exec_state.ml: Array Bitset Graph Ir List Primgraph Primitive
