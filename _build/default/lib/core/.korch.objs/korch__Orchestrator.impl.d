lib/core/orchestrator.ml: Array Bitset Blp_formulation Candidate Fission Fun Gpu Graph Hashtbl Ir Kernel_identifier List Lp Opgraph Partition Primgraph Primitive Printf Runtime Scheduler Transform
