lib/core/candidate.ml: Bitset Format Gpu Ir List String
