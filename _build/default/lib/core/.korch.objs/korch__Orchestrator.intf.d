lib/core/orchestrator.mli: Candidate Gpu Ir Kernel_identifier Opgraph Partition Primgraph Runtime
