lib/core/report.mli: Format Orchestrator
