lib/core/partition.ml: Array Graph Hashtbl Ir List Primgraph Primitive Printf String
