lib/core/scheduler.ml: Array Candidate Graph Hashtbl Ir List Primgraph Primitive
