(** Human-readable orchestration reports. *)

(** [pp_result ppf r] prints node/state/candidate counts, selected kernel
    count, redundancy, estimated latency and simulated tuning time. *)
val pp_result : Format.formatter -> Orchestrator.result -> unit

(** [summary r] is [pp_result] rendered to a string. *)
val summary : Orchestrator.result -> string
