(** The binary-linear-programming formulation of kernel orchestration
    (§4.2, Equations 2–4).

    One binary variable per candidate kernel; the objective is the sum of
    selected kernels' latencies (Eq. 2). Output-covering rows (Eq. 3)
    force every graph output to be published; dependency rows (Eq. 4)
    force every external input of a selected kernel to be published by
    some selected kernel. Source nodes (graph inputs, constants) are
    always available and generate no constraints. *)

open Ir

(** [build ?disjoint g candidates ~extra_cuts] — the BLP instance.

    With [disjoint] every primitive may be {e executed} at most once —
    selected kernels must not overlap. This is the restriction all prior
    tensor program optimizers operate under and exists for the ablation of
    §4.2's redundancy relaxation.

    [extra_cuts] are no-good cuts ([Σ_{k∈S} u_k ≤ |S|−1]) added by the
    orchestrator when a BLP optimum admits no deadlock-free schedule (see
    {!Scheduler} and DESIGN.md, Engineering notes). *)
val build :
  ?disjoint:bool ->
  Primgraph.t ->
  Candidate.t array ->
  extra_cuts:int list list ->
  Lp.Ilp.problem
