(** Human-readable orchestration reports. *)

let pp_result ppf (r : Orchestrator.result) =
  Format.fprintf ppf "Korch orchestration result@.";
  Format.fprintf ppf "  primitive nodes : %d@." r.Orchestrator.prim_nodes;
  Format.fprintf ppf "  segments        : %d@." (List.length r.Orchestrator.segments);
  Format.fprintf ppf "  execution states: %d@." r.Orchestrator.total_states;
  Format.fprintf ppf "  candidates      : %d@." r.Orchestrator.total_candidates;
  Format.fprintf ppf "  kernels selected: %d@."
    (Runtime.Plan.kernel_count r.Orchestrator.plan);
  Format.fprintf ppf "  redundancy      : %d extra primitive executions@."
    (Runtime.Plan.redundancy r.Orchestrator.plan);
  Format.fprintf ppf "  est. latency    : %.2f us@."
    r.Orchestrator.plan.Runtime.Plan.total_latency_us;
  Format.fprintf ppf "  sim. tuning time: %.1f s@." r.Orchestrator.tuning_time_s

let summary (r : Orchestrator.result) : string = Format.asprintf "%a" pp_result r
