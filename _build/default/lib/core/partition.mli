(** Graph partitioning (§2: "Korch first partitions an input computation
    graph into smaller subgraphs to reduce the optimization space ...
    while preserving optimization opportunities").

    The primitive graph is split along its topological order into segments
    of bounded size, preferring to cut at the last position crossed by at
    most one live tensor. Tensors crossing a boundary become [Input]
    placeholders in the consumer segment and must be published by the
    producer segment. *)

open Ir

(** Placeholder naming for cross-segment tensors. *)
val placeholder_name : int -> string

(** [parse_placeholder name] — global producer id, if [name] is a segment
    placeholder created by {!placeholder_name}. *)
val parse_placeholder : string -> int option

type segment = {
  local : Primgraph.t;
      (** self-contained subgraph: copied sources + placeholders; its
          outputs are the tensors later segments or the graph need *)
  out_global : int list;
      (** global producer ids of [local.outputs], position-aligned *)
}

(** [split g ~max_prims] — partition [g] into segments of at most
    [max_prims] executable primitives each. Together the segments cover
    every executable primitive exactly once. *)
val split : Primgraph.t -> max_prims:int -> segment list
