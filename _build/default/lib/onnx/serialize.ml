(** Graph serialization to the JSON interchange format (ONNX stand-in).

    Document shape:
    {v
    { "format": "korch-onnx-json", "version": 1, "kind": "operator"|"primitive",
      "nodes": [ {"id": 0, "op": {...}, "inputs": [..], "shape": [..]} ],
      "outputs": [ .. ] }
    v} *)

open Ir
open Tensor

let of_shape (s : Shape.t) : Json.t = Json.List (Array.to_list (Array.map (fun d -> Json.Num (float_of_int d)) s))

let of_int_array (a : int array) : Json.t = of_shape a

let of_pair (a, b) : Json.t = Json.List [ Json.Num (float_of_int a); Json.Num (float_of_int b) ]

let of_nd (t : Nd.t) : Json.t =
  Json.Obj
    [ ("shape", of_shape (Nd.shape t));
      ("data", Json.List (Array.to_list (Array.map (fun v -> Json.Num v) t.Nd.data))) ]

let of_const (c : Const.t) : Json.t =
  let fill =
    match c.Const.fill with
    | Const.Zeros -> [ ("fill", Json.Str "zeros") ]
    | Const.Ones -> [ ("fill", Json.Str "ones") ]
    | Const.Value v -> [ ("fill", Json.Str "value"); ("value", Json.Num v) ]
    | Const.Randn seed -> [ ("fill", Json.Str "randn"); ("seed", Json.Num (float_of_int seed)) ]
    | Const.Randn_scaled (seed, scale) ->
      [ ("fill", Json.Str "randn_scaled");
        ("seed", Json.Num (float_of_int seed));
        ("scale", Json.Num scale) ]
    | Const.Data nd -> [ ("fill", Json.Str "data"); ("tensor", of_nd nd) ]
  in
  Json.Obj (("shape", of_shape c.Const.shape) :: fill)

let kind k attrs = Json.Obj (("kind", Json.Str k) :: attrs)

let of_optype : Optype.t -> Json.t = function
  | Optype.Input name -> kind "Input" [ ("name", Json.Str name) ]
  | Constant c -> kind "Constant" [ ("const", of_const c) ]
  | Relu -> kind "Relu" []
  | LeakyRelu a -> kind "LeakyRelu" [ ("alpha", Json.Num a) ]
  | Sigmoid -> kind "Sigmoid" []
  | Silu -> kind "Silu" []
  | Mish -> kind "Mish" []
  | Tanh -> kind "Tanh" []
  | Gelu -> kind "Gelu" []
  | Erf -> kind "Erf" []
  | Exp -> kind "Exp" []
  | Log -> kind "Log" []
  | Sqrt -> kind "Sqrt" []
  | Neg -> kind "Neg" []
  | Square -> kind "Square" []
  | Add -> kind "Add" []
  | Sub -> kind "Sub" []
  | Mul -> kind "Mul" []
  | Div -> kind "Div" []
  | Pow -> kind "Pow" []
  | Softmax axis -> kind "Softmax" [ ("axis", Json.Num (float_of_int axis)) ]
  | InstanceNorm eps -> kind "InstanceNorm" [ ("eps", Json.Num eps) ]
  | LayerNorm eps -> kind "LayerNorm" [ ("eps", Json.Num eps) ]
  | BatchNormInference eps -> kind "BatchNorm" [ ("eps", Json.Num eps) ]
  | ReduceSum { axis; keepdims } ->
    kind "ReduceSum" [ ("axis", Json.Num (float_of_int axis)); ("keepdims", Json.Bool keepdims) ]
  | ReduceMean { axis; keepdims } ->
    kind "ReduceMean" [ ("axis", Json.Num (float_of_int axis)); ("keepdims", Json.Bool keepdims) ]
  | ReduceMax { axis; keepdims } ->
    kind "ReduceMax" [ ("axis", Json.Num (float_of_int axis)); ("keepdims", Json.Bool keepdims) ]
  | MaxPool { kernel; stride; padding } ->
    kind "MaxPool" [ ("kernel", of_pair kernel); ("stride", of_pair stride); ("padding", of_pair padding) ]
  | AvgPool { kernel; stride; padding } ->
    kind "AvgPool" [ ("kernel", of_pair kernel); ("stride", of_pair stride); ("padding", of_pair padding) ]
  | GlobalAvgPool -> kind "GlobalAvgPool" []
  | Transpose perm -> kind "Transpose" [ ("perm", of_int_array perm) ]
  | Reshape s -> kind "Reshape" [ ("shape", of_shape s) ]
  | Pad { before; after; value } ->
    kind "Pad" [ ("before", of_int_array before); ("after", of_int_array after); ("value", Json.Num value) ]
  | Slice { starts; stops } ->
    kind "Slice" [ ("starts", of_int_array starts); ("stops", of_int_array stops) ]
  | Concat axis -> kind "Concat" [ ("axis", Json.Num (float_of_int axis)) ]
  | MatMul -> kind "MatMul" []
  | Conv { stride; padding; bias } ->
    kind "Conv" [ ("stride", of_pair stride); ("padding", of_pair padding); ("bias", Json.Bool bias) ]
  | Upsample s -> kind "Upsample" [ ("scale", Json.Num (float_of_int s)) ]
  | TopK k -> kind "TopK" [ ("k", Json.Num (float_of_int k)) ]

let of_agg : Primitive.agg -> Json.t = function
  | Primitive.Sum -> Json.Str "sum"
  | Mean -> Json.Str "mean"
  | Max -> Json.Str "max"
  | Min -> Json.Str "min"
  | Prod -> Json.Str "prod"

let of_unary (u : Primitive.unary) : Json.t =
  match u with
  | Primitive.LeakyRelu a -> kind "leaky_relu" [ ("alpha", Json.Num a) ]
  | AddConst c -> kind "add_const" [ ("c", Json.Num c) ]
  | MulConst c -> kind "mul_const" [ ("c", Json.Num c) ]
  | PowConst c -> kind "pow_const" [ ("c", Json.Num c) ]
  | Clip (lo, hi) -> kind "clip" [ ("lo", Json.Num lo); ("hi", Json.Num hi) ]
  | u ->
    let name =
      match u with
      | Primitive.Exp -> "exp" | Log -> "log" | Sqrt -> "sqrt" | Rsqrt -> "rsqrt"
      | Neg -> "neg" | Abs -> "abs" | Square -> "square" | Reciprocal -> "recip"
      | Relu -> "relu" | Sigmoid -> "sigmoid" | Silu -> "silu" | Mish -> "mish"
      | Tanh -> "tanh" | Erf -> "erf" | Gelu -> "gelu"
      | LeakyRelu _ | AddConst _ | MulConst _ | PowConst _ | Clip _ -> assert false
    in
    kind name []

let of_binary : Primitive.binary -> Json.t = function
  | Primitive.Add -> Json.Str "add"
  | Sub -> Json.Str "sub"
  | Mul -> Json.Str "mul"
  | Div -> Json.Str "div"
  | Max -> Json.Str "max"
  | Min -> Json.Str "min"
  | Pow -> Json.Str "pow"

let of_primitive : Primitive.t -> Json.t = function
  | Primitive.Input name -> kind "Input" [ ("name", Json.Str name) ]
  | Constant c -> kind "Constant" [ ("const", of_const c) ]
  | Unary u -> kind "Unary" [ ("fn", of_unary u) ]
  | Binary b -> kind "Binary" [ ("fn", of_binary b) ]
  | Reduce (agg, axis) ->
    kind "Reduce" [ ("agg", of_agg agg); ("axis", Json.Num (float_of_int axis)) ]
  | Broadcast (axis, size) ->
    kind "Broadcast" [ ("axis", Json.Num (float_of_int axis)); ("size", Json.Num (float_of_int size)) ]
  | Pool { agg; kernel; stride; padding } ->
    kind "Pool"
      [ ("agg", of_agg agg); ("kernel", of_pair kernel); ("stride", of_pair stride);
        ("padding", of_pair padding) ]
  | Transpose perm -> kind "Transpose" [ ("perm", of_int_array perm) ]
  | Reshape s -> kind "Reshape" [ ("shape", of_shape s) ]
  | Pad { before; after; value } ->
    kind "Pad" [ ("before", of_int_array before); ("after", of_int_array after); ("value", Json.Num value) ]
  | Slice { starts; stops } ->
    kind "Slice" [ ("starts", of_int_array starts); ("stops", of_int_array stops) ]
  | Concat axis -> kind "Concat" [ ("axis", Json.Num (float_of_int axis)) ]
  | Matmul -> kind "MatMul" []
  | Conv { stride; padding } ->
    kind "Conv" [ ("stride", of_pair stride); ("padding", of_pair padding) ]
  | Upsample s -> kind "Upsample" [ ("scale", Json.Num (float_of_int s)) ]
  | Opaque name -> kind "Opaque" [ ("name", Json.Str name) ]

let of_graph ~(kind_name : string) (of_op : 'op -> Json.t) (g : 'op Graph.t) : Json.t =
  Json.Obj
    [ ("format", Json.Str "korch-onnx-json");
      ("version", Json.Num 1.0);
      ("kind", Json.Str kind_name);
      ( "nodes",
        Json.List
          (Array.to_list
             (Array.map
                (fun (nd : 'op Graph.node) ->
                  Json.Obj
                    [ ("id", Json.Num (float_of_int nd.Graph.id));
                      ("op", of_op nd.Graph.op);
                      ( "inputs",
                        Json.List (List.map (fun i -> Json.Num (float_of_int i)) nd.Graph.inputs) );
                      ("shape", of_shape nd.Graph.shape) ])
                g.Graph.nodes)) );
      ("outputs", Json.List (List.map (fun o -> Json.Num (float_of_int o)) g.Graph.outputs)) ]

(** [of_opgraph g] — serialize an operator graph. *)
let of_opgraph (g : Opgraph.t) : Json.t = of_graph ~kind_name:"operator" of_optype g

(** [of_primgraph g] — serialize a primitive graph. *)
let of_primgraph (g : Primgraph.t) : Json.t = of_graph ~kind_name:"primitive" of_primitive g

(** [opgraph_to_string g] / [primgraph_to_string g] — JSON text. *)
let opgraph_to_string g = Json.to_string (of_opgraph g)

let primgraph_to_string g = Json.to_string (of_primgraph g)
