lib/onnx/serialize.ml: Array Const Graph Ir Json List Nd Opgraph Optype Primgraph Primitive Shape Tensor
