lib/onnx/json.ml: Buffer Char Float List Printf String
