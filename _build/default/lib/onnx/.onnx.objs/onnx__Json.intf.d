lib/onnx/json.mli:
