lib/onnx/deserialize.ml: Array Const Graph Ir Json List Nd Opgraph Optype Primgraph Primitive Printf Shape Tensor
