(** Minimal JSON implementation (parser + printer).

    Stands in for the ONNX protobuf interchange (§5.1): graphs serialize to
    a JSON document with the same information content — node list with op
    type, attributes, input edges, shapes, and output markers. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape_string s);
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf (Str k);
        Buffer.add_char buf ':';
        print_to buf v)
      fields;
    Buffer.add_char buf '}'

(** [to_string j] — compact JSON text. *)
let to_string (j : t) : string =
  let buf = Buffer.create 1024 in
  print_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Parse_error of string * int

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (msg, st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st lit value =
  if
    st.pos + String.length lit <= String.length st.src
    && String.sub st.src st.pos (String.length lit) = lit
  then begin
    st.pos <- st.pos + String.length lit;
    value
  end
  else fail st ("expected " ^ lit)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        (* \uXXXX: decode BMP code points to UTF-8. *)
        if st.pos + 4 >= String.length st.src then fail st "bad unicode escape";
        let hex = String.sub st.src (st.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail st "bad unicode escape"
        in
        st.pos <- st.pos + 4;
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail st "bad escape");
      advance st;
      go ()
    end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st ("bad number: " ^ text)

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' ->
    advance st;
    Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

(** [of_string s] — parse a JSON document. Raises {!Parse_error}. *)
let of_string (s : string) : t =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_exn = function List l -> l | _ -> invalid_arg "Json: expected list"
let to_string_exn = function Str s -> s | _ -> invalid_arg "Json: expected string"
let to_float_exn = function Num f -> f | _ -> invalid_arg "Json: expected number"
let to_int_exn j = int_of_float (to_float_exn j)
