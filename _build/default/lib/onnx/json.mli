(** Minimal JSON implementation (parser + printer).

    Stands in for the ONNX protobuf interchange (§5.1): graphs serialize
    to JSON documents with the same information content. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (whitespace-free) rendering; integers print without a decimal
    point, other numbers with 17 significant digits (round-trip exact). *)
val to_string : t -> string

(** Raised by {!of_string} with a message and the byte offset. *)
exception Parse_error of string * int

(** Strict parser (no trailing garbage, no comments); [\uXXXX] escapes
    decode to UTF-8. *)
val of_string : string -> t

(** [member key j] — field lookup on objects, [None] otherwise. *)
val member : string -> t -> t option

val to_list_exn : t -> t list
val to_string_exn : t -> string
val to_float_exn : t -> float
val to_int_exn : t -> int
