(** The softmax fission rule (Figure 3).

    [softmax(x)_i = exp(x_i) / sum_j exp(x_j)] decomposes into an
    elementwise exponential, a reduce along the softmax axis, a broadcast
    back, and an elementwise division. The three components carry distinct
    parallelism degrees — the very example the paper uses to motivate
    operator fission (§1). *)

open Ir

let rule ~(axis : int) : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let x = Rule.one_input ctx in
  let shape = Primgraph.B.shape_of b x in
  let d = shape.(axis) in
  let e = Primgraph.B.add b (Primitive.Unary Exp) [ x ] in
  let s = Primgraph.B.add b (Primitive.Reduce (Sum, axis)) [ e ] in
  let bc = Primgraph.B.add b (Primitive.Broadcast (axis, d)) [ s ] in
  Primgraph.B.add b (Primitive.Binary Div) [ e; bc ]
