(** The operator fission engine (§3, §5.1).

    Walks an operator graph in topological order and applies the per-operator
    fission rule, producing a functionally equivalent primitive graph. *)

open Ir

(** [rule_for op] selects the fission rule for an operator. [Input] and
    [Constant] are handled by the engine itself. *)
let rule_for (op : Optype.t) : Rule.t =
  match op with
  | Optype.Input _ | Constant _ -> invalid_arg "fission: sources handled by engine"
  | Relu -> Rules_basic.unary Primitive.Relu
  | LeakyRelu a -> Rules_basic.unary (Primitive.LeakyRelu a)
  | Sigmoid -> Rules_basic.unary Primitive.Sigmoid
  | Silu -> Rules_basic.silu
  | Mish -> Rules_basic.mish
  | Tanh -> Rules_basic.unary Primitive.Tanh
  | Gelu -> Rules_basic.gelu
  | Erf -> Rules_basic.unary Primitive.Erf
  | Exp -> Rules_basic.unary Primitive.Exp
  | Log -> Rules_basic.unary Primitive.Log
  | Sqrt -> Rules_basic.unary Primitive.Sqrt
  | Neg -> Rules_basic.unary Primitive.Neg
  | Square -> Rules_basic.unary Primitive.Square
  | Add -> Rules_basic.binary Primitive.Add
  | Sub -> Rules_basic.binary Primitive.Sub
  | Mul -> Rules_basic.binary Primitive.Mul
  | Div -> Rules_basic.binary Primitive.Div
  | Pow -> Rules_basic.binary Primitive.Pow
  | Softmax axis -> Rules_softmax.rule ~axis
  | InstanceNorm eps -> Rules_norm.instance_norm ~eps
  | LayerNorm eps -> Rules_norm.layer_norm ~eps
  | BatchNormInference eps -> Rules_norm.batch_norm ~eps
  | ReduceSum { axis; keepdims } -> Rules_basic.reduce Primitive.Sum ~axis ~keepdims
  | ReduceMean { axis; keepdims } -> Rules_basic.reduce Primitive.Mean ~axis ~keepdims
  | ReduceMax { axis; keepdims } -> Rules_basic.reduce Primitive.Max ~axis ~keepdims
  | MaxPool { kernel; stride; padding } ->
    Rules_basic.pool ~agg:Primitive.Max ~kernel ~stride ~padding
  | AvgPool { kernel; stride; padding } ->
    Rules_basic.pool ~agg:Primitive.Mean ~kernel ~stride ~padding
  | GlobalAvgPool -> Rules_basic.global_avg_pool
  | Transpose perm -> Rules_basic.layout (Primitive.Transpose perm)
  | Reshape s -> Rules_basic.layout (Primitive.Reshape s)
  | Pad { before; after; value } -> Rules_basic.layout (Primitive.Pad { before; after; value })
  | Slice { starts; stops } -> Rules_basic.layout (Primitive.Slice { starts; stops })
  | Concat axis -> Rules_basic.layout (Primitive.Concat axis)
  | MatMul -> Rules_basic.matmul
  | Conv { stride; padding; bias } -> Rules_basic.conv ~stride ~padding ~bias
  | Upsample scale -> Rules_basic.upsample scale
  | TopK k -> Rules_basic.topk k

(** [run_detailed g] applies operator fission to the whole computation
    graph, returning the primitive graph, the mapping from operator node id
    to the primitive node producing that operator's output, and per-operator
    primitive id ranges [(start, stop)] (the primitives each operator
    decomposed into — used by the operator-level fusion baselines to cost
    their kernels with the same model Korch uses). *)
let run_detailed (g : Opgraph.t) : Primgraph.t * int array * (int * int) array =
  let b = Primgraph.B.create () in
  let mapping = Array.make (Graph.length g) (-1) in
  let ranges = Array.make (Graph.length g) (0, 0) in
  List.iter
    (fun id ->
      let nd = Graph.node g id in
      let start = b.Graph.Builder.count in
      let prim_out =
        match nd.Graph.op with
        | Optype.Input name -> Primgraph.B.input b name nd.Graph.shape
        | Optype.Constant c -> Primgraph.B.const b c
        | op ->
          let inputs = List.map (fun i -> mapping.(i)) nd.Graph.inputs in
          let ctx = Rule.{ b; inputs; out_shape = nd.Graph.shape } in
          (rule_for op) ctx
      in
      ranges.(id) <- (start, b.Graph.Builder.count);
      (* Fission must preserve the operator's output shape exactly. *)
      let got = Primgraph.B.shape_of b prim_out in
      if not (Tensor.Shape.equal got nd.Graph.shape) then
        invalid_arg
          (Printf.sprintf "fission: %s produced shape %s, expected %s"
             (Optype.to_string nd.Graph.op)
             (Tensor.Shape.to_string got)
             (Tensor.Shape.to_string nd.Graph.shape));
      mapping.(id) <- prim_out)
    (Graph.topo_order g);
  Primgraph.B.set_outputs b (List.map (fun i -> mapping.(i)) g.Graph.outputs);
  (Primgraph.B.finish b, mapping, ranges)

(** [run g] — as {!run_detailed} without the per-operator ranges. *)
let run (g : Opgraph.t) : Primgraph.t * int array =
  let pg, mapping, _ = run_detailed g in
  (pg, mapping)
