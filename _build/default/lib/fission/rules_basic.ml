(** Fission rules for operators that map to a single primitive (or a short
    elementwise chain): activations, binary arithmetic, layout and linear
    operators. *)

open Ir

let unary (u : Primitive.unary) : Rule.t =
 fun ctx -> Primgraph.B.add ctx.Rule.b (Primitive.Unary u) [ Rule.one_input ctx ]

let binary (op : Primitive.binary) : Rule.t =
 fun ctx ->
  let x, y = Rule.two_inputs ctx in
  Primgraph.B.add ctx.Rule.b (Primitive.Binary op) [ x; y ]

(** GELU decomposes into its erf definition:
    [0.5 * x * (1 + erf (x / sqrt 2))] — five elementwise primitives. All
    carry the same parallelism, so kernel orchestration is free to fuse the
    chain back together or split it across neighbouring kernels. *)
let gelu : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let x = Rule.one_input ctx in
  let scaled = Primgraph.B.add b (Primitive.Unary (MulConst (1.0 /. sqrt 2.0))) [ x ] in
  let erf = Primgraph.B.add b (Primitive.Unary Erf) [ scaled ] in
  let plus1 = Primgraph.B.add b (Primitive.Unary (AddConst 1.0)) [ erf ] in
  let prod = Primgraph.B.add b (Primitive.Binary Mul) [ x; plus1 ] in
  Primgraph.B.add b (Primitive.Unary (MulConst 0.5)) [ prod ]

(** SiLU decomposes into [x * sigmoid x]. *)
let silu : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let x = Rule.one_input ctx in
  let s = Primgraph.B.add b (Primitive.Unary Sigmoid) [ x ] in
  Primgraph.B.add b (Primitive.Binary Mul) [ x; s ]

(** Mish decomposes into [x * tanh (log (1 + exp x))]. *)
let mish : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let x = Rule.one_input ctx in
  let e = Primgraph.B.add b (Primitive.Unary Exp) [ x ] in
  let p = Primgraph.B.add b (Primitive.Unary (AddConst 1.0)) [ e ] in
  let l = Primgraph.B.add b (Primitive.Unary Log) [ p ] in
  let t = Primgraph.B.add b (Primitive.Unary Tanh) [ l ] in
  Primgraph.B.add b (Primitive.Binary Mul) [ x; t ]

let reduce (agg : Primitive.agg) ~axis ~keepdims : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let r = Primgraph.B.add b (Primitive.Reduce (agg, axis)) [ Rule.one_input ctx ] in
  if keepdims then Primgraph.B.add b (Primitive.Broadcast (axis, 1)) [ r ] else r

let pool ~agg ~kernel ~stride ~padding : Rule.t =
 fun ctx ->
  Primgraph.B.add ctx.Rule.b
    (Primitive.Pool { agg; kernel; stride; padding })
    [ Rule.one_input ctx ]

(** GlobalAvgPool = spatial mean reductions followed by keepdims
    broadcasts: NCHW -> NC -> NC11. *)
let global_avg_pool : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  let x = Rule.one_input ctx in
  let m3 = Primgraph.B.add b (Primitive.Reduce (Mean, 3)) [ x ] in
  let m2 = Primgraph.B.add b (Primitive.Reduce (Mean, 2)) [ m3 ] in
  let b2 = Primgraph.B.add b (Primitive.Broadcast (2, 1)) [ m2 ] in
  Primgraph.B.add b (Primitive.Broadcast (3, 1)) [ b2 ]

let layout (p : Primitive.t) : Rule.t =
 fun ctx -> Primgraph.B.add ctx.Rule.b p ctx.Rule.inputs

let matmul : Rule.t =
 fun ctx ->
  let x, y = Rule.two_inputs ctx in
  Primgraph.B.add ctx.Rule.b Primitive.Matmul [ x; y ]

(** Convolution with bias splits into the linear Conv primitive plus a
    broadcasted elementwise Add of the reshaped bias. *)
let conv ~stride ~padding ~bias : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  match (bias, ctx.Rule.inputs) with
  | false, [ x; w ] -> Primgraph.B.add b (Primitive.Conv { stride; padding }) [ x; w ]
  | true, [ x; w; bias_id ] ->
    let y = Primgraph.B.add b (Primitive.Conv { stride; padding }) [ x; w ] in
    let oc = (Primgraph.B.shape_of b y).(1) in
    let bias4 = Primgraph.B.add b (Primitive.Reshape [| 1; oc; 1; 1 |]) [ bias_id ] in
    Primgraph.B.add b (Primitive.Binary Add) [ y; bias4 ]
  | _ -> invalid_arg "fission conv: arity mismatch"

let upsample scale : Rule.t =
 fun ctx -> Primgraph.B.add ctx.Rule.b (Primitive.Upsample scale) [ Rule.one_input ctx ]

let topk k : Rule.t =
 fun ctx ->
  Primgraph.B.add_raw ctx.Rule.b
    (Primitive.Opaque (Printf.sprintf "topk(%d)" k))
    ctx.Rule.inputs ctx.Rule.out_shape
