(** Fission rules for normalization operators.

    These are the operators whose monolithic kernels the paper's case
    studies (Figure 12: InstanceNorm in Candy) show to be suboptimal: each
    mixes reductions, broadcasts and elementwise arithmetic with different
    parallelism degrees. *)

open Ir

(* Mean over one axis followed by a same-axis broadcast back to the input
   shape: the reduce/broadcast pair every normalization is built from. *)
let mean_broadcast b x ~axis =
  let shape = Primgraph.B.shape_of b x in
  let d = shape.(axis) in
  let m = Primgraph.B.add b (Primitive.Reduce (Mean, axis)) [ x ] in
  Primgraph.B.add b (Primitive.Broadcast (axis, d)) [ m ]

(* Normalize [x] over the given axes (innermost last): returns the
   primitive id of (x - mean) / sqrt (var + eps). *)
let normalize_axes b x ~axes ~eps =
  let mean_all x =
    (* Reduce the axes from highest to lowest so indices stay valid, then
       broadcast back in increasing order. *)
    let sorted = List.sort (fun a b' -> compare b' a) axes in
    let shape = Primgraph.B.shape_of b x in
    let reduced =
      List.fold_left
        (fun acc ax -> Primgraph.B.add b (Primitive.Reduce (Mean, ax)) [ acc ])
        x sorted
    in
    List.fold_left
      (fun acc ax -> Primgraph.B.add b (Primitive.Broadcast (ax, shape.(ax))) [ acc ])
      reduced (List.sort compare axes)
  in
  let mu = mean_all x in
  let centered = Primgraph.B.add b (Primitive.Binary Sub) [ x; mu ] in
  let sq = Primgraph.B.add b (Primitive.Unary Square) [ centered ] in
  let var = mean_all sq in
  let var_eps = Primgraph.B.add b (Primitive.Unary (AddConst eps)) [ var ] in
  let std = Primgraph.B.add b (Primitive.Unary Sqrt) [ var_eps ] in
  Primgraph.B.add b (Primitive.Binary Div) [ centered; std ]

(** InstanceNorm (NCHW): normalize each (n, c) plane over H and W. *)
let instance_norm ~eps : Rule.t =
 fun ctx -> normalize_axes ctx.Rule.b (Rule.one_input ctx) ~axes:[ 2; 3 ] ~eps

(** LayerNorm: normalize over the last axis; optional scale/bias inputs are
    applied as broadcasted elementwise Mul/Add. *)
let layer_norm ~eps : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  match ctx.Rule.inputs with
  | [] -> invalid_arg "fission layer_norm: no inputs"
  | x :: rest ->
    let rank = Tensor.Shape.rank (Primgraph.B.shape_of b x) in
    let normalized = normalize_axes b x ~axes:[ rank - 1 ] ~eps in
    (match rest with
    | [] -> normalized
    | [ scale ] -> Primgraph.B.add b (Primitive.Binary Mul) [ normalized; scale ]
    | [ scale; bias ] ->
      let scaled = Primgraph.B.add b (Primitive.Binary Mul) [ normalized; scale ] in
      Primgraph.B.add b (Primitive.Binary Add) [ scaled; bias ]
    | _ -> invalid_arg "fission layer_norm: arity")

(** Inference-mode BatchNorm with per-channel scale/bias/mean/var (all
    shape [C]) on an NCHW tensor: pure elementwise arithmetic once the
    channel parameters are reshaped to [1;C;1;1]. *)
let batch_norm ~eps : Rule.t =
 fun ctx ->
  let b = ctx.Rule.b in
  match ctx.Rule.inputs with
  | [ x; scale; bias; mean; var ] ->
    let c = (Primgraph.B.shape_of b x).(1) in
    let chan id = Primgraph.B.add b (Primitive.Reshape [| 1; c; 1; 1 |]) [ id ] in
    let mean4 = chan mean and var4 = chan var and scale4 = chan scale and bias4 = chan bias in
    let centered = Primgraph.B.add b (Primitive.Binary Sub) [ x; mean4 ] in
    let var_eps = Primgraph.B.add b (Primitive.Unary (AddConst eps)) [ var4 ] in
    let std = Primgraph.B.add b (Primitive.Unary Sqrt) [ var_eps ] in
    let normalized = Primgraph.B.add b (Primitive.Binary Div) [ centered; std ] in
    let scaled = Primgraph.B.add b (Primitive.Binary Mul) [ normalized; scale4 ] in
    Primgraph.B.add b (Primitive.Binary Add) [ scaled; bias4 ]
  | l ->
    invalid_arg
      (Printf.sprintf "fission batch_norm: expected 5 inputs, got %d" (List.length l))
