(** Operator-graph canonicalization passes applied before optimization —
    the standard "freeze" transformations every deployment stack performs,
    so the Korch-vs-baseline comparison is about orchestration rather than
    about who folded batch norms.

    Currently: inference-mode BatchNorm folding into a preceding Conv with
    constant weights. *)

open Ir
open Tensor

type fold_plan = {
  x : int;  (** conv data input (original graph id) *)
  stride : int * int;
  padding : int * int;
  w' : Nd.t;  (** folded weight *)
  b' : Nd.t;  (** folded bias *)
}

(* Detect (conv W [b]) -> BN(scale, bias, mean, var) with constant
   parameters, where the conv feeds only the BN. *)
let plan_fold (g : Opgraph.t) (succs : int list array) (bn_id : int) : fold_plan option =
  let const_of id = match Graph.op g id with Optype.Constant c -> Some c | _ -> None in
  match (Graph.op g bn_id, Graph.inputs g bn_id) with
  | Optype.BatchNormInference eps, [ conv_id; scale; bias; mean; var ] -> begin
    match (Graph.op g conv_id, Graph.inputs g conv_id) with
    | Optype.Conv { stride; padding; bias = has_bias }, conv_inputs
      when succs.(conv_id) = [ bn_id ] -> begin
      let x, w_id, b_id =
        match (has_bias, conv_inputs) with
        | false, [ x; w ] -> (x, w, None)
        | true, [ x; w; b ] -> (x, w, Some b)
        | _ -> invalid_arg "canonicalize: conv arity"
      in
      let bias_const =
        match b_id with
        | None -> Some None
        | Some id -> (match const_of id with Some c -> Some (Some c) | None -> None)
      in
      match (const_of w_id, bias_const, const_of scale, const_of bias, const_of mean,
             const_of var)
      with
      | Some wc, Some b_opt, Some sc, Some bc, Some mc, Some vc ->
        let w = Const.materialize wc in
        let oc = (Nd.shape w).(0) in
        let scale_v = Const.materialize sc and bias_v = Const.materialize bc in
        let mean_v = Const.materialize mc and var_v = Const.materialize vc in
        let b0 =
          match b_opt with Some c -> Const.materialize c | None -> Nd.zeros [| oc |]
        in
        (* factor[o] = scale[o] / sqrt(var[o] + eps) *)
        let factor =
          Nd.create [| oc |] (fun o ->
              Nd.get_linear scale_v o /. sqrt (Nd.get_linear var_v o +. eps))
        in
        let per_out = Nd.numel w / oc in
        let w' =
          Nd.create (Nd.shape w) (fun i ->
              Nd.get_linear w i *. Nd.get_linear factor (i / per_out))
        in
        let b' =
          Nd.create [| oc |] (fun o ->
              ((Nd.get_linear b0 o -. Nd.get_linear mean_v o) *. Nd.get_linear factor o)
              +. Nd.get_linear bias_v o)
        in
        Some { x; stride; padding; w'; b' }
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

(** [fold_batch_norms g] — rewrite every foldable Conv+BN pair into a
    single biased Conv with recomputed constant weights. *)
let fold_batch_norms (g : Opgraph.t) : Opgraph.t =
  let succs = Graph.succs g in
  let b = Opgraph.B.create () in
  let remap = Array.make (Graph.length g) (-1) in
  let folded_conv = Array.make (Graph.length g) false in
  let plans = Hashtbl.create 8 in
  Array.iter
    (fun nd ->
      match plan_fold g succs nd.Graph.id with
      | Some plan ->
        Hashtbl.replace plans nd.Graph.id plan;
        (match Graph.inputs g nd.Graph.id with
        | conv_id :: _ -> folded_conv.(conv_id) <- true
        | [] -> ())
      | None -> ())
    g.Graph.nodes;
  List.iter
    (fun id ->
      let nd = Graph.node g id in
      if folded_conv.(id) then () (* the BN node emits the folded conv *)
      else
        match Hashtbl.find_opt plans id with
        | Some plan ->
          let wc = Opgraph.B.const b (Const.of_nd plan.w') in
          let bc = Opgraph.B.const b (Const.of_nd plan.b') in
          remap.(id) <-
            Opgraph.B.add b
              (Optype.Conv { stride = plan.stride; padding = plan.padding; bias = true })
              [ remap.(plan.x); wc; bc ]
        | None ->
          let inputs = List.map (fun i -> remap.(i)) nd.Graph.inputs in
          remap.(id) <-
            (match nd.Graph.op with
            | Optype.Input name -> Opgraph.B.input b name nd.Graph.shape
            | Optype.Constant c -> Opgraph.B.const b c
            | op -> Opgraph.B.add b op inputs))
    (Graph.topo_order g);
  Opgraph.B.set_outputs b (List.map (fun i -> remap.(i)) g.Graph.outputs);
  Opgraph.B.finish b
