(** The operator fission engine (§3, §5.1).

    Walks an operator graph in topological order and applies each
    operator's fission rule, producing a functionally equivalent primitive
    graph. The fission rule table lives in the implementation
    ({!rule_for}); per-operator rules are in [Rules_basic],
    [Rules_softmax] (Figure 3) and [Rules_norm]. *)

open Ir

(** [rule_for op] — the fission rule for [op]. Raises [Invalid_argument]
    on sources ([Input]/[Constant]), which the engine handles itself. *)
val rule_for : Optype.t -> Rule.t

(** [run_detailed g] — the primitive graph, the mapping from operator node
    id to the primitive producing that operator's output, and per-operator
    primitive id ranges [(start, stop)] — used by the operator-level
    fusion baselines to cost their kernels under the same model as
    Korch. *)
val run_detailed : Opgraph.t -> Primgraph.t * int array * (int * int) array

(** [run g] — as {!run_detailed} without the ranges. *)
val run : Opgraph.t -> Primgraph.t * int array
