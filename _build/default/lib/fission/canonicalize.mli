(** Operator-graph canonicalization passes applied before optimization —
    the standard "freeze" transformations every deployment stack performs,
    so the Korch-vs-baseline comparison measures orchestration rather than
    who folded batch norms. *)

open Ir

(** [fold_batch_norms g] — rewrite every
    [Conv (const weights) → BatchNormInference (const parameters)] pair
    (where the Conv feeds only the BN) into a single biased Conv with
    recomputed constant weights. Semantics-preserving; other nodes are
    copied unchanged. *)
val fold_batch_norms : Opgraph.t -> Opgraph.t
