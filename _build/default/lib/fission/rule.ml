(** Operator fission rule interface (§3).

    A rule translates one operator node into a functionally equivalent
    sub-DAG of primitives inside a shared primitive-graph builder. The rule
    receives the primitive ids corresponding to the operator's inputs and
    returns the primitive id producing the operator's output. *)

open Ir

type ctx = {
  b : Primgraph.B.b;  (** destination builder *)
  inputs : int list;  (** primitive ids of the operator's inputs, in order *)
  out_shape : Tensor.Shape.t;  (** the operator's inferred output shape *)
}

type t = ctx -> int

let one_input ctx =
  match ctx.inputs with
  | [ x ] -> x
  | l -> invalid_arg (Printf.sprintf "fission rule: expected 1 input, got %d" (List.length l))

let two_inputs ctx =
  match ctx.inputs with
  | [ x; y ] -> (x, y)
  | l -> invalid_arg (Printf.sprintf "fission rule: expected 2 inputs, got %d" (List.length l))
