lib/fission/rule.ml: Ir List Primgraph Printf Tensor
