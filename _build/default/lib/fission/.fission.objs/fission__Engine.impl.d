lib/fission/engine.ml: Array Graph Ir List Opgraph Optype Primgraph Primitive Printf Rule Rules_basic Rules_norm Rules_softmax Tensor
