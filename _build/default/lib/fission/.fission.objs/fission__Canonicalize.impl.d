lib/fission/canonicalize.ml: Array Const Graph Hashtbl Ir List Nd Opgraph Optype Tensor
