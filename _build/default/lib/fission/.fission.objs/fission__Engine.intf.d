lib/fission/engine.mli: Ir Opgraph Optype Primgraph Rule
