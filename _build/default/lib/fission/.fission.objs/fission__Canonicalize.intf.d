lib/fission/canonicalize.mli: Ir Opgraph
