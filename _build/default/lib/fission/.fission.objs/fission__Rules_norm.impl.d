lib/fission/rules_norm.ml: Array Ir List Primgraph Primitive Printf Rule Tensor
