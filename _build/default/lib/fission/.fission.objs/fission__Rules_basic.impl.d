lib/fission/rules_basic.ml: Array Ir Primgraph Primitive Printf Rule
