lib/fission/rules_softmax.ml: Array Ir Primgraph Primitive Rule
