(** Contiguous n-dimensional float tensors.

    This is the execution substrate standing in for GPU device memory: a
    dense row-major [float array] plus a {!Shape.t}. All operator and
    primitive semantics in the repository are defined against this module,
    which lets the test suite verify that operator fission, primitive-graph
    transformations and kernel orchestration all preserve program
    semantics. *)

type t = { shape : Shape.t; data : float array }

(** [create shape f] builds a tensor whose element at linear position [k]
    is [f k]. *)
let create (shape : Shape.t) (f : int -> float) : t =
  Shape.validate shape;
  { shape; data = Array.init (Shape.numel shape) f }

(** [full shape v] is a tensor filled with the constant [v]. *)
let full (shape : Shape.t) (v : float) : t =
  Shape.validate shape;
  { shape; data = Array.make (Shape.numel shape) v }

(** [zeros shape] is [full shape 0.]. *)
let zeros shape = full shape 0.0

(** [ones shape] is [full shape 1.]. *)
let ones shape = full shape 1.0

(** [scalar v] is a rank-0 tensor holding [v]. *)
let scalar v = { shape = [||]; data = [| v |] }

(** [of_array shape data] wraps an existing flat array; the array length
    must equal [Shape.numel shape]. *)
let of_array (shape : Shape.t) (data : float array) : t =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Nd.of_array: data length does not match shape";
  { shape; data }

(** [shape t] is the tensor's shape. *)
let shape (t : t) = t.shape

(** [numel t] is the number of elements. *)
let numel (t : t) = Array.length t.data

(** [get t idx] reads the element at multi-index [idx]. *)
let get (t : t) (idx : int array) = t.data.(Shape.ravel t.shape idx)

(** [set t idx v] writes the element at multi-index [idx]. *)
let set (t : t) (idx : int array) v = t.data.(Shape.ravel t.shape idx) <- v

(** [get_linear t k] reads the [k]-th element in row-major order. *)
let get_linear (t : t) k = t.data.(k)

(** [set_linear t k v] writes the [k]-th element in row-major order. *)
let set_linear (t : t) k v = t.data.(k) <- v

(** [to_scalar t] extracts the value of a single-element tensor. *)
let to_scalar (t : t) =
  if numel t <> 1 then invalid_arg "Nd.to_scalar: tensor has more than one element";
  t.data.(0)

(** [copy t] is a deep copy. *)
let copy (t : t) = { shape = Array.copy t.shape; data = Array.copy t.data }

(** [rand rng shape] fills a tensor with uniform samples in [[-1, 1)]. *)
let rand (rng : Rng.t) (shape : Shape.t) : t =
  create shape (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0)

(** [randn rng shape] fills a tensor with standard normal samples. *)
let randn (rng : Rng.t) (shape : Shape.t) : t = create shape (fun _ -> Rng.normal rng)

(** [reshape t shape'] reinterprets the data with a new shape of equal
    element count. O(1) data sharing is deliberately avoided: a fresh copy
    keeps the value-semantics simple. *)
let reshape (t : t) (shape' : Shape.t) : t =
  if Shape.numel shape' <> numel t then
    invalid_arg
      (Printf.sprintf "Nd.reshape: %s -> %s changes element count"
         (Shape.to_string t.shape) (Shape.to_string shape'));
  { shape = shape'; data = Array.copy t.data }

(** [equal ?eps a b] is true when shapes match and all elements differ by at
    most [eps] (default [1e-9]) in absolute value, treating NaNs as equal to
    NaNs. *)
let equal ?(eps = 1e-9) (a : t) (b : t) =
  Shape.equal a.shape b.shape
  && Array.for_all2
       (fun x y -> (Float.is_nan x && Float.is_nan y) || Float.abs (x -. y) <= eps)
       a.data b.data

(** [max_abs_diff a b] is the largest elementwise absolute difference;
    raises when shapes differ. *)
let max_abs_diff (a : t) (b : t) =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Nd.max_abs_diff: shape mismatch";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
  !m

(** [allclose ?rtol ?atol a b] is numpy-style approximate equality:
    [|a - b| <= atol + rtol * |b|] elementwise. *)
let allclose ?(rtol = 1e-6) ?(atol = 1e-8) (a : t) (b : t) =
  Shape.equal a.shape b.shape
  && Array.for_all2
       (fun x y ->
         (Float.is_nan x && Float.is_nan y)
         || Float.abs (x -. y) <= atol +. (rtol *. Float.abs y))
       a.data b.data

(** [pp ppf t] prints shape and a bounded prefix of the data. *)
let pp ppf (t : t) =
  let n = min 8 (numel t) in
  Format.fprintf ppf "%s{" (Shape.to_string t.shape);
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf ppf ", ";
    Format.fprintf ppf "%g" t.data.(i)
  done;
  if numel t > n then Format.fprintf ppf ", ...";
  Format.fprintf ppf "}"

let to_string (t : t) = Format.asprintf "%a" pp t
