(** Tensor shapes and index arithmetic.

    A shape is an [int array] of non-negative dimension sizes, row-major.
    The empty array denotes a scalar. *)

type t = int array

(** [numel s] is the total number of elements of a tensor of shape [s]. *)
let numel (s : t) = Array.fold_left ( * ) 1 s

(** [rank s] is the number of dimensions. *)
let rank (s : t) = Array.length s

(** [equal a b] is structural equality of shapes. *)
let equal (a : t) (b : t) = a = b

(** [to_string s] renders a shape as ["[2x3x4]"]. *)
let to_string (s : t) =
  "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp ppf s = Format.pp_print_string ppf (to_string s)

(** [strides s] are the row-major strides of a contiguous tensor of shape
    [s]: the last dimension has stride 1. *)
let strides (s : t) : int array =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

(** [ravel s idx] converts a multi-dimensional index [idx] into a linear
    offset for a contiguous tensor of shape [s]. *)
let ravel (s : t) (idx : int array) =
  let st = strides s in
  let off = ref 0 in
  for i = 0 to rank s - 1 do
    off := !off + (idx.(i) * st.(i))
  done;
  !off

(** [unravel s k] is the inverse of {!ravel}: the multi-dimensional index of
    the [k]-th element in row-major order. *)
let unravel (s : t) (k : int) : int array =
  let n = rank s in
  let idx = Array.make n 0 in
  let rem = ref k in
  let st = strides s in
  for i = 0 to n - 1 do
    idx.(i) <- !rem / st.(i);
    rem := !rem mod st.(i)
  done;
  idx

(** [validate s] raises [Invalid_argument] if any dimension is negative. *)
let validate (s : t) =
  Array.iter (fun d -> if d < 0 then invalid_arg "Shape.validate: negative dimension") s

(** [broadcast a b] is the numpy-style broadcast of two shapes. Dimensions
    are aligned from the trailing end; a dimension of size 1 stretches to
    match the other operand. Raises [Invalid_argument] when incompatible. *)
let broadcast (a : t) (b : t) : t =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let out = Array.make r 0 in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db then out.(i) <- da
    else if da = 1 then out.(i) <- db
    else if db = 1 then out.(i) <- da
    else
      invalid_arg
        (Printf.sprintf "Shape.broadcast: incompatible %s and %s" (to_string a) (to_string b))
  done;
  out

(** [drop_axis s k] removes dimension [k]. *)
let drop_axis (s : t) (k : int) : t =
  if k < 0 || k >= rank s then invalid_arg "Shape.drop_axis: axis out of range";
  Array.init (rank s - 1) (fun i -> if i < k then s.(i) else s.(i + 1))

(** [insert_axis s k d] inserts a dimension of size [d] at position [k]. *)
let insert_axis (s : t) (k : int) (d : int) : t =
  if k < 0 || k > rank s then invalid_arg "Shape.insert_axis: axis out of range";
  Array.init (rank s + 1) (fun i -> if i < k then s.(i) else if i = k then d else s.(i - 1))

(** [set_axis s k d] replaces the size of dimension [k] with [d]. *)
let set_axis (s : t) (k : int) (d : int) : t =
  let s' = Array.copy s in
  s'.(k) <- d;
  s'

(** [permute s perm] applies a permutation to the axes: output dimension [i]
    has size [s.(perm.(i))]. *)
let permute (s : t) (perm : int array) : t =
  if Array.length perm <> rank s then invalid_arg "Shape.permute: rank mismatch";
  let seen = Array.make (rank s) false in
  Array.iter
    (fun p ->
      if p < 0 || p >= rank s || seen.(p) then invalid_arg "Shape.permute: not a permutation";
      seen.(p) <- true)
    perm;
  Array.map (fun p -> s.(p)) perm
