(** Layout transformation primitives (§3, third category): transpose, pad,
    slice, concat, split, reshape. None performs arithmetic; each is a
    one-to-one (or gather/scatter) index remapping. *)

(** [transpose t perm] permutes the axes: output index [i] reads input axis
    [perm.(i)]. *)
let transpose (t : Nd.t) (perm : int array) : Nd.t =
  let s = Nd.shape t in
  let out_shape = Shape.permute s perm in
  let out = Nd.zeros out_shape in
  let r = Shape.rank s in
  let n = Shape.numel out_shape in
  let src_idx = Array.make r 0 in
  for k = 0 to n - 1 do
    let idx = Shape.unravel out_shape k in
    for i = 0 to r - 1 do
      src_idx.(perm.(i)) <- idx.(i)
    done;
    Nd.set_linear out k (Nd.get t src_idx)
  done;
  out

(** [transpose2d t] swaps the trailing two axes, keeping leading batch axes. *)
let transpose2d (t : Nd.t) : Nd.t =
  let r = Shape.rank (Nd.shape t) in
  if r < 2 then invalid_arg "Ops_layout.transpose2d: rank < 2";
  let perm = Array.init r (fun i -> i) in
  perm.(r - 2) <- r - 1;
  perm.(r - 1) <- r - 2;
  transpose t perm

(** [pad t ~before ~after ~value] pads each dimension [i] with [before.(i)]
    leading and [after.(i)] trailing cells filled with [value]. *)
let pad (t : Nd.t) ~(before : int array) ~(after : int array) ~(value : float) : Nd.t =
  let s = Nd.shape t in
  let r = Shape.rank s in
  if Array.length before <> r || Array.length after <> r then
    invalid_arg "Ops_layout.pad: padding rank mismatch";
  let out_shape = Array.init r (fun i -> s.(i) + before.(i) + after.(i)) in
  let out = Nd.full out_shape value in
  let n = Shape.numel s in
  let dst = Array.make r 0 in
  for k = 0 to n - 1 do
    let idx = Shape.unravel s k in
    for i = 0 to r - 1 do
      dst.(i) <- idx.(i) + before.(i)
    done;
    Nd.set out dst (Nd.get_linear t k)
  done;
  out

(** [slice t ~starts ~stops] extracts the half-open box
    [[starts.(i), stops.(i))] along every dimension. *)
let slice (t : Nd.t) ~(starts : int array) ~(stops : int array) : Nd.t =
  let s = Nd.shape t in
  let r = Shape.rank s in
  if Array.length starts <> r || Array.length stops <> r then
    invalid_arg "Ops_layout.slice: bounds rank mismatch";
  Array.iteri
    (fun i st ->
      if st < 0 || stops.(i) > s.(i) || st > stops.(i) then
        invalid_arg "Ops_layout.slice: bounds out of range")
    starts;
  let out_shape = Array.init r (fun i -> stops.(i) - starts.(i)) in
  let out = Nd.zeros out_shape in
  let n = Shape.numel out_shape in
  let src = Array.make r 0 in
  for k = 0 to n - 1 do
    let idx = Shape.unravel out_shape k in
    for i = 0 to r - 1 do
      src.(i) <- idx.(i) + starts.(i)
    done;
    Nd.set_linear out k (Nd.get t src)
  done;
  out

(** [concat ts ~axis] concatenates tensors along [axis]; all other
    dimensions must agree. *)
let concat (ts : Nd.t list) ~(axis : int) : Nd.t =
  match ts with
  | [] -> invalid_arg "Ops_layout.concat: empty list"
  | first :: _ ->
    let s0 = Nd.shape first in
    let r = Shape.rank s0 in
    if axis < 0 || axis >= r then invalid_arg "Ops_layout.concat: axis out of range";
    let total =
      List.fold_left
        (fun acc t ->
          let s = Nd.shape t in
          if Shape.rank s <> r then invalid_arg "Ops_layout.concat: rank mismatch";
          Array.iteri
            (fun i d -> if i <> axis && d <> s0.(i) then
                invalid_arg "Ops_layout.concat: shape mismatch off-axis")
            s;
          acc + s.(axis))
        0 ts
    in
    let out_shape = Shape.set_axis s0 axis total in
    let out = Nd.zeros out_shape in
    let offset = ref 0 in
    List.iter
      (fun t ->
        let s = Nd.shape t in
        let n = Shape.numel s in
        let dst = Array.make r 0 in
        for k = 0 to n - 1 do
          let idx = Shape.unravel s k in
          Array.blit idx 0 dst 0 r;
          dst.(axis) <- idx.(axis) + !offset;
          Nd.set out dst (Nd.get_linear t k)
        done;
        offset := !offset + s.(axis))
      ts;
    out

(** [split t ~axis ~sizes] is the inverse of {!concat}: cuts [t] along
    [axis] into pieces of the given sizes (which must sum to the axis
    length). *)
let split (t : Nd.t) ~(axis : int) ~(sizes : int list) : Nd.t list =
  let s = Nd.shape t in
  let total = List.fold_left ( + ) 0 sizes in
  if total <> s.(axis) then invalid_arg "Ops_layout.split: sizes do not sum to axis length";
  let r = Shape.rank s in
  let starts = Array.make r 0 and stops = Array.copy s in
  let pieces = ref [] in
  let pos = ref 0 in
  List.iter
    (fun sz ->
      starts.(axis) <- !pos;
      stops.(axis) <- !pos + sz;
      pieces := slice t ~starts:(Array.copy starts) ~stops:(Array.copy stops) :: !pieces;
      pos := !pos + sz)
    sizes;
  List.rev !pieces

(** [reshape] re-exported from {!Nd} for symmetry with the primitive set. *)
let reshape = Nd.reshape

(** [nchw_to_nhwc t] converts layout for a rank-4 tensor. *)
let nchw_to_nhwc (t : Nd.t) = transpose t [| 0; 2; 3; 1 |]

(** [nhwc_to_nchw t] converts layout for a rank-4 tensor. *)
let nhwc_to_nchw (t : Nd.t) = transpose t [| 0; 3; 1; 2 |]
