(** Reduce and broadcast primitives (§3, second category), plus the pooling
    operators that lower to windowed reductions. *)

type agg = Sum | Mean | Max | Min | Prod

let agg_to_string = function
  | Sum -> "sum" | Mean -> "mean" | Max -> "max" | Min -> "min" | Prod -> "prod"

let agg_init = function
  | Sum | Mean -> 0.0
  | Max -> Float.neg_infinity
  | Min -> Float.infinity
  | Prod -> 1.0

let agg_combine = function
  | Sum | Mean -> ( +. )
  | Max -> Float.max
  | Min -> Float.min
  | Prod -> ( *. )

(** [reduce agg ~axis ~keepdims t] aggregates along dimension [axis]. With
    [keepdims] the reduced dimension is kept with size 1 (the broadcast
    primitive is then its exact inverse shape-wise). *)
let reduce (agg : agg) ~(axis : int) ~(keepdims : bool) (t : Nd.t) : Nd.t =
  let s = Nd.shape t in
  let r = Shape.rank s in
  if axis < 0 || axis >= r then invalid_arg "Ops_reduce.reduce: axis out of range";
  let d = s.(axis) in
  let out_shape = Shape.drop_axis s axis in
  let out = Nd.full out_shape (agg_init agg) in
  let combine = agg_combine agg in
  let n_out = Shape.numel out_shape in
  let st = Shape.strides s in
  for k = 0 to n_out - 1 do
    let idx_out = Shape.unravel out_shape k in
    (* Base offset of the row being reduced. *)
    let base = ref 0 in
    for i = 0 to r - 1 do
      if i < axis then base := !base + (idx_out.(i) * st.(i))
      else if i > axis then base := !base + (idx_out.(i - 1) * st.(i))
    done;
    let acc = ref (agg_init agg) in
    for j = 0 to d - 1 do
      acc := combine !acc (Nd.get_linear t (!base + (j * st.(axis))))
    done;
    let v = match agg with Mean -> !acc /. float_of_int d | _ -> !acc in
    Nd.set_linear out k v
  done;
  if keepdims then Nd.reshape out (Shape.insert_axis out_shape axis 1) else out

let sum ?(keepdims = false) ~axis t = reduce Sum ~axis ~keepdims t
let mean ?(keepdims = false) ~axis t = reduce Mean ~axis ~keepdims t
let max ?(keepdims = false) ~axis t = reduce Max ~axis ~keepdims t
let min ?(keepdims = false) ~axis t = reduce Min ~axis ~keepdims t

(** [broadcast_axis t ~axis ~size] inserts dimension [axis] of size [size]
    and replicates the input along it: the paper's broadcast primitive,
    inverse of reduce over the same axis. *)
let broadcast_axis (t : Nd.t) ~(axis : int) ~(size : int) : Nd.t =
  let s = Nd.shape t in
  let out_shape = Shape.insert_axis s axis size in
  let out = Nd.zeros out_shape in
  let n = Shape.numel out_shape in
  for k = 0 to n - 1 do
    let idx = Shape.unravel out_shape k in
    let src_idx = Shape.drop_axis idx axis in
    Nd.set_linear out k (Nd.get t src_idx)
  done;
  out

(** [pool2d agg t ~kernel ~stride ~padding] applies a 2-d windowed reduction
    over the trailing two dimensions of an NCHW tensor. Padding cells
    contribute the aggregator's neutral element (so max-pool padding is
    [-inf], matching ONNX semantics for valid windows; windows are placed on
    the padded canvas). *)
let pool2d (agg : agg) (t : Nd.t) ~(kernel : int * int) ~(stride : int * int)
    ~(padding : int * int) : Nd.t =
  let s = Nd.shape t in
  if Shape.rank s <> 4 then invalid_arg "Ops_reduce.pool2d: expected NCHW input";
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let kh, kw = kernel and sh, sw = stride and ph, pw = padding in
  let oh = ((h + (2 * ph) - kh) / sh) + 1 in
  let ow = ((w + (2 * pw) - kw) / sw) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Ops_reduce.pool2d: empty output";
  let out = Nd.zeros [| n; c; oh; ow |] in
  let combine = agg_combine agg in
  for bi = 0 to n - 1 do
    for ci = 0 to c - 1 do
      for oi = 0 to oh - 1 do
        for oj = 0 to ow - 1 do
          let acc = ref (agg_init agg) in
          let count = ref 0 in
          for ki = 0 to kh - 1 do
            for kj = 0 to kw - 1 do
              let ii = (oi * sh) + ki - ph and jj = (oj * sw) + kj - pw in
              if ii >= 0 && ii < h && jj >= 0 && jj < w then begin
                acc := combine !acc (Nd.get t [| bi; ci; ii; jj |]);
                incr count
              end
            done
          done;
          let v =
            match agg with
            | Mean -> if !count = 0 then 0.0 else !acc /. float_of_int (kh * kw)
            | _ -> !acc
          in
          Nd.set out [| bi; ci; oi; oj |] v
        done
      done
    done
  done;
  out

let maxpool2d = pool2d Max
let avgpool2d = pool2d Mean

(** [global_avg_pool2d t] averages over the spatial dimensions of an NCHW
    tensor, producing [N x C x 1 x 1]. *)
let global_avg_pool2d (t : Nd.t) : Nd.t =
  let s = Nd.shape t in
  if Shape.rank s <> 4 then invalid_arg "Ops_reduce.global_avg_pool2d: expected NCHW";
  let m = mean ~keepdims:true ~axis:3 t in
  mean ~keepdims:true ~axis:2 m
