lib/tensor/nd.ml: Array Float Format Printf Rng Shape
