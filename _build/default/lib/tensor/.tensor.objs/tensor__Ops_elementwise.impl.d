lib/tensor/ops_elementwise.ml: Array Float Nd Shape Stdlib
