lib/tensor/ops_linear.ml: Array Nd Ops_elementwise Ops_layout Printf Shape
