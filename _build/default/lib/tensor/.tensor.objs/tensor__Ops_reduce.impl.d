lib/tensor/ops_reduce.ml: Array Float Nd Shape
