lib/tensor/ops_layout.ml: Array List Nd Shape
