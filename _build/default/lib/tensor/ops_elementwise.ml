(** Elementwise tensor operations with numpy-style broadcasting.

    Elementwise primitives are the first of the paper's four primitive
    categories (§3): the output element at position [x] depends only on the
    input elements at position [x] (after broadcasting). *)

(** [map f t] applies [f] to every element. *)
let map (f : float -> float) (t : Nd.t) : Nd.t =
  Nd.of_array (Nd.shape t) (Array.map f t.Nd.data)

(* Fold a broadcast index of the output into the linear offset of an input
   whose shape was right-aligned against the output shape. *)
let broadcast_offset ~(out_shape : Shape.t) ~(in_shape : Shape.t) (out_idx : int array) : int =
  let ro = Shape.rank out_shape and ri = Shape.rank in_shape in
  let st = Shape.strides in_shape in
  let off = ref 0 in
  for i = 0 to ri - 1 do
    let oi = out_idx.(i + (ro - ri)) in
    let d = in_shape.(i) in
    let pos = if d = 1 then 0 else oi in
    off := !off + (pos * st.(i))
  done;
  !off

(** [map2 f a b] applies [f] pointwise after broadcasting [a] and [b] to a
    common shape. *)
let map2 (f : float -> float -> float) (a : Nd.t) (b : Nd.t) : Nd.t =
  let sa = Nd.shape a and sb = Nd.shape b in
  if Shape.equal sa sb then
    Nd.of_array sa (Array.init (Nd.numel a) (fun i -> f a.Nd.data.(i) b.Nd.data.(i)))
  else begin
    let out_shape = Shape.broadcast sa sb in
    let out = Nd.zeros out_shape in
    let n = Shape.numel out_shape in
    for k = 0 to n - 1 do
      let idx = Shape.unravel out_shape k in
      let va = a.Nd.data.(broadcast_offset ~out_shape ~in_shape:sa idx) in
      let vb = b.Nd.data.(broadcast_offset ~out_shape ~in_shape:sb idx) in
      Nd.set_linear out k (f va vb)
    done;
    out
  end

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let pow = map2 ( ** )
let maximum = map2 Float.max
let minimum = map2 Float.min

let neg = map (fun x -> -.x)
let exp = map Stdlib.exp
let log = map Stdlib.log
let sqrt = map Stdlib.sqrt
let abs = map Float.abs
let square = map (fun x -> x *. x)
let reciprocal = map (fun x -> 1.0 /. x)
let tanh = map Stdlib.tanh

(** [erf_scalar x] approximates the Gauss error function with the
    Abramowitz & Stegun 7.1.26 polynomial (max abs error 1.5e-7), which is
    ample for checking functional equivalence of GELU decompositions. *)
let erf_scalar (x : float) : float =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 in
  let poly = ((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t +. a1 in
  sign *. (1.0 -. (poly *. t *. Stdlib.exp (-.x *. x)))

let erf = map erf_scalar
let relu = map (fun x -> Float.max 0.0 x)
let leaky_relu ~alpha = map (fun x -> if x >= 0.0 then x else alpha *. x)
let sigmoid = map (fun x -> 1.0 /. (1.0 +. Stdlib.exp (-.x)))

(** SiLU / swish: [x * sigmoid x]. *)
let silu = map (fun x -> x /. (1.0 +. Stdlib.exp (-.x)))

(** Mish activation used by YOLOv4: [x * tanh (softplus x)]. *)
let mish = map (fun x -> x *. Stdlib.tanh (Stdlib.log (1.0 +. Stdlib.exp x)))

(** Exact GELU via erf. *)
let gelu = map (fun x -> 0.5 *. x *. (1.0 +. erf_scalar (x /. Stdlib.sqrt 2.0)))

let add_scalar c = map (fun x -> x +. c)
let mul_scalar c = map (fun x -> x *. c)

(** [clip ~lo ~hi t] clamps every element into [[lo, hi]]. *)
let clip ~lo ~hi = map (fun x -> Float.min hi (Float.max lo x))

(** [select c a b] is elementwise [if c <> 0 then a else b] with
    broadcasting applied pairwise. *)
let select (c : Nd.t) (a : Nd.t) (b : Nd.t) : Nd.t =
  let ca = map2 (fun c a -> if c <> 0.0 then a else Float.nan) c a in
  map2 (fun x b -> if Float.is_nan x then b else x) ca b
