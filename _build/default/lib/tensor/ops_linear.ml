(** Linear transformation primitives (§3, fourth category): GEMM, batched
    GEMM, and 2-d convolution (direct and im2col+GEMM paths). Each output
    is linear in every input tensor. *)

(** [matmul a b] multiplies a [m x k] by a [k x n] matrix. *)
let matmul (a : Nd.t) (b : Nd.t) : Nd.t =
  let sa = Nd.shape a and sb = Nd.shape b in
  if Shape.rank sa <> 2 || Shape.rank sb <> 2 then
    invalid_arg "Ops_linear.matmul: expected rank-2 inputs";
  let m = sa.(0) and k = sa.(1) in
  if sb.(0) <> k then
    invalid_arg
      (Printf.sprintf "Ops_linear.matmul: inner dims differ %s vs %s"
         (Shape.to_string sa) (Shape.to_string sb));
  let n = sb.(1) in
  let out = Nd.zeros [| m; n |] in
  let ad = a.Nd.data and bd = b.Nd.data and od = out.Nd.data in
  for i = 0 to m - 1 do
    let arow = i * k in
    for p = 0 to k - 1 do
      let av = ad.(arow + p) in
      if av <> 0.0 then begin
        let brow = p * n in
        let orow = i * n in
        for j = 0 to n - 1 do
          od.(orow + j) <- od.(orow + j) +. (av *. bd.(brow + j))
        done
      end
    done
  done;
  out

(** [batch_matmul a b] multiplies [... x m x k] by [... x k x n] with
    broadcasting over the leading batch dimensions. *)
let batch_matmul (a : Nd.t) (b : Nd.t) : Nd.t =
  let sa = Nd.shape a and sb = Nd.shape b in
  let ra = Shape.rank sa and rb = Shape.rank sb in
  if ra < 2 || rb < 2 then invalid_arg "Ops_linear.batch_matmul: rank < 2";
  if ra = 2 && rb = 2 then matmul a b
  else begin
    let batch_a = Array.sub sa 0 (ra - 2) and batch_b = Array.sub sb 0 (rb - 2) in
    let batch = Shape.broadcast batch_a batch_b in
    let m = sa.(ra - 2) and k = sa.(ra - 1) in
    if sb.(rb - 2) <> k then invalid_arg "Ops_linear.batch_matmul: inner dims differ";
    let n = sb.(rb - 1) in
    let nb = Shape.numel batch in
    let out_shape = Array.append batch [| m; n |] in
    let out = Nd.zeros out_shape in
    let numel_a_mat = m * k and numel_b_mat = k * n and numel_o_mat = m * n in
    for bidx = 0 to nb - 1 do
      let bmulti = Shape.unravel batch bidx in
      let off_in in_batch numel_mat =
        let rbm = Array.length in_batch in
        let roff = Array.length batch - rbm in
        let lin = ref 0 in
        let st = Shape.strides in_batch in
        for i = 0 to rbm - 1 do
          let pos = if in_batch.(i) = 1 then 0 else bmulti.(i + roff) in
          lin := !lin + (pos * st.(i))
        done;
        !lin * numel_mat
      in
      let oa = off_in batch_a numel_a_mat and ob = off_in batch_b numel_b_mat in
      let oo = bidx * numel_o_mat in
      let ad = a.Nd.data and bd = b.Nd.data and od = out.Nd.data in
      for i = 0 to m - 1 do
        for p = 0 to k - 1 do
          let av = ad.(oa + (i * k) + p) in
          if av <> 0.0 then
            for j = 0 to n - 1 do
              od.(oo + (i * n) + j) <-
                od.(oo + (i * n) + j) +. (av *. bd.(ob + (p * n) + j))
            done
        done
      done
    done;
    out
  end

(** [im2col t ~kernel ~stride ~padding] unfolds an NCHW tensor into a
    [(N*OH*OW) x (C*KH*KW)] matrix so that convolution becomes a GEMM. *)
let im2col (t : Nd.t) ~(kernel : int * int) ~(stride : int * int) ~(padding : int * int) :
    Nd.t =
  let s = Nd.shape t in
  if Shape.rank s <> 4 then invalid_arg "Ops_linear.im2col: expected NCHW";
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let kh, kw = kernel and sh, sw = stride and ph, pw = padding in
  let oh = ((h + (2 * ph) - kh) / sh) + 1 in
  let ow = ((w + (2 * pw) - kw) / sw) + 1 in
  let rows = n * oh * ow and cols = c * kh * kw in
  let out = Nd.zeros [| rows; cols |] in
  let od = out.Nd.data in
  let row = ref 0 in
  for bi = 0 to n - 1 do
    for oi = 0 to oh - 1 do
      for oj = 0 to ow - 1 do
        let base = !row * cols in
        let col = ref 0 in
        for ci = 0 to c - 1 do
          for ki = 0 to kh - 1 do
            for kj = 0 to kw - 1 do
              let ii = (oi * sh) + ki - ph and jj = (oj * sw) + kj - pw in
              if ii >= 0 && ii < h && jj >= 0 && jj < w then
                od.(base + !col) <- Nd.get t [| bi; ci; ii; jj |];
              incr col
            done
          done
        done;
        incr row
      done
    done
  done;
  out

(** [conv2d t weight ?bias ~stride ~padding] is a standard NCHW 2-d
    convolution with weight layout [OC x IC x KH x KW], implemented as
    im2col + GEMM (the same lowering the paper's vendor backends use). *)
let conv2d (t : Nd.t) (weight : Nd.t) ?(bias : Nd.t option) ~(stride : int * int)
    ~(padding : int * int) () : Nd.t =
  let s = Nd.shape t and sw_ = Nd.shape weight in
  if Shape.rank s <> 4 || Shape.rank sw_ <> 4 then
    invalid_arg "Ops_linear.conv2d: expected NCHW input and OIHW weight";
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let oc = sw_.(0) and ic = sw_.(1) and kh = sw_.(2) and kw = sw_.(3) in
  if ic <> c then invalid_arg "Ops_linear.conv2d: channel mismatch";
  let sh, sw = stride and ph, pw = padding in
  let oh = ((h + (2 * ph) - kh) / sh) + 1 in
  let ow = ((w + (2 * pw) - kw) / sw) + 1 in
  let cols = im2col t ~kernel:(kh, kw) ~stride ~padding in
  (* weight as [C*KH*KW x OC] *)
  let wmat = Ops_layout.transpose2d (Nd.reshape weight [| oc; ic * kh * kw |]) in
  let prod = matmul cols wmat in
  (* prod: [(N*OH*OW) x OC] -> NCHW *)
  let prod = Nd.reshape prod [| n; oh; ow; oc |] in
  let out = Ops_layout.nhwc_to_nchw prod in
  match bias with
  | None -> out
  | Some b ->
    let sb = Nd.shape b in
    if Shape.rank sb <> 1 || sb.(0) <> oc then
      invalid_arg "Ops_linear.conv2d: bias must be [OC]";
    Ops_elementwise.add out (Nd.reshape b [| 1; oc; 1; 1 |])

(** [conv2d_direct] is a naive nested-loop convolution used as an
    independent oracle in tests for the im2col path. *)
let conv2d_direct (t : Nd.t) (weight : Nd.t) ~(stride : int * int) ~(padding : int * int) :
    Nd.t =
  let s = Nd.shape t and sw_ = Nd.shape weight in
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let oc = sw_.(0) and kh = sw_.(2) and kw = sw_.(3) in
  let sh, sw = stride and ph, pw = padding in
  let oh = ((h + (2 * ph) - kh) / sh) + 1 in
  let ow = ((w + (2 * pw) - kw) / sw) + 1 in
  let out = Nd.zeros [| n; oc; oh; ow |] in
  for bi = 0 to n - 1 do
    for oci = 0 to oc - 1 do
      for oi = 0 to oh - 1 do
        for oj = 0 to ow - 1 do
          let acc = ref 0.0 in
          for ci = 0 to c - 1 do
            for ki = 0 to kh - 1 do
              for kj = 0 to kw - 1 do
                let ii = (oi * sh) + ki - ph and jj = (oj * sw) + kj - pw in
                if ii >= 0 && ii < h && jj >= 0 && jj < w then
                  acc :=
                    !acc
                    +. (Nd.get t [| bi; ci; ii; jj |] *. Nd.get weight [| oci; ci; ki; kj |])
              done
            done
          done;
          Nd.set out [| bi; oci; oi; oj |] !acc
        done
      done
    done
  done;
  out

(** [upsample_nearest2d t ~scale] nearest-neighbour upsampling on NCHW, used
    by the YOLO necks. Linear in its input, hence a linear-transformation
    primitive. *)
let upsample_nearest2d (t : Nd.t) ~(scale : int) : Nd.t =
  let s = Nd.shape t in
  if Shape.rank s <> 4 then invalid_arg "Ops_linear.upsample_nearest2d: expected NCHW";
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let out = Nd.zeros [| n; c; h * scale; w * scale |] in
  let os = Nd.shape out in
  let numel = Shape.numel os in
  for k = 0 to numel - 1 do
    let idx = Shape.unravel os k in
    Nd.set_linear out k (Nd.get t [| idx.(0); idx.(1); idx.(2) / scale; idx.(3) / scale |])
  done;
  out
