(* Compare Korch against the fusion baselines on any model in the zoo, at
   test scale (so every strategy is also executed and checked for
   correctness, not just costed).

   Run with: dune exec examples/baseline_comparison.exe [model]        *)

open Ir

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "candy" in
  let entry =
    match Models.Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown model %s; available: %s\n" name
        (String.concat ", " (List.map (fun e -> e.Models.Registry.name) Models.Registry.all));
      exit 1
  in
  let spec = Gpu.Spec.v100 and precision = Gpu.Precision.FP32 in
  let g = Fission.Canonicalize.fold_batch_norms (entry.Models.Registry.build_small ()) in
  let env = Baselines.Common.make_env ~spec ~precision g in
  let inputs =
    Array.to_list g.Graph.nodes
    |> List.filter_map (fun nd ->
           match nd.Graph.op with
           | Optype.Input n -> Some (n, Tensor.Nd.randn (Tensor.Rng.create 11) nd.Graph.shape)
           | _ -> None)
  in
  let reference = Runtime.Interp.run g ~inputs in
  let verify plan graph =
    let got = Runtime.Executor.run graph plan ~inputs in
    List.fold_left2
      (fun acc e a -> Float.max acc (Tensor.Nd.max_abs_diff e a))
      0.0 reference got
  in
  Printf.printf "%s (test scale): Korch vs baselines on simulated %s\n\n" name spec.Gpu.Spec.name;
  Printf.printf "%-12s %10s %9s %12s\n" "strategy" "us" "kernels" "max |diff|";
  List.iter
    (fun (bname, run) ->
      let plan = run env in
      Printf.printf "%-12s %10.1f %9d %12g\n" bname plan.Runtime.Plan.total_latency_us
        (Runtime.Plan.kernel_count plan)
        (verify plan env.Baselines.Common.primgraph))
    [ ("eager", Baselines.Eager.run); ("greedy-tvm", Baselines.Greedy_tvm.run);
      ("tensorrt", Baselines.Trt.run); ("dp-chain", Baselines.Dp_chain.run) ];
  let r = Korch.Orchestrator.run Korch.Orchestrator.default_config g in
  Printf.printf "%-12s %10.1f %9d %12g\n" "korch"
    r.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us
    (Runtime.Plan.kernel_count r.Korch.Orchestrator.plan)
    (verify r.Korch.Orchestrator.plan r.Korch.Orchestrator.graph)
