(* EfficientViT attention-block case study (the paper's Figures 8-10):
   redundant computation and layout-aware kernel selection.

   Run with: dune exec examples/efficientvit_case_study.exe *)

let () =
  let g = Models.Efficientvit.fig8_attention_block ~batch:1 ~tokens:1024 ~channels:16 () in
  let spec = Gpu.Spec.v100 and precision = Gpu.Precision.FP32 in

  (* TensorRT-style pattern fusion as the reference strategy. *)
  let env = Baselines.Common.make_env ~spec ~precision g in
  let trt = Baselines.Trt.run env in
  Printf.printf "TensorRT strategy: %d kernels, %.1f us\n" (Runtime.Plan.kernel_count trt)
    trt.Runtime.Plan.total_latency_us;

  (* Korch with a window large enough to see the whole block at once. *)
  let cfg =
    { Korch.Orchestrator.default_config with
      Korch.Orchestrator.partition_max_prims = 16 }
  in
  let r = Korch.Orchestrator.run cfg g in
  let plan = r.Korch.Orchestrator.plan in
  Printf.printf "Korch strategy:    %d kernels, %.1f us (%.2fx), %d redundant primitive executions\n"
    (Runtime.Plan.kernel_count plan) plan.Runtime.Plan.total_latency_us
    (trt.Runtime.Plan.total_latency_us /. plan.Runtime.Plan.total_latency_us)
    (Runtime.Plan.redundancy plan);
  print_newline ();
  List.iteri
    (fun i k ->
      Printf.printf "k%-2d [%-7s] %6.2f us  %s\n" (i + 1) k.Runtime.Plan.backend
        k.Runtime.Plan.latency_us
        (String.concat " "
           (List.map
              (fun id -> Ir.Primitive.to_string (Ir.Graph.op r.Korch.Orchestrator.graph id))
              k.Runtime.Plan.prims)))
    plan.Runtime.Plan.kernels;

  (* The redundancy is real: some primitive ids appear in several kernels. *)
  let table = Hashtbl.create 16 in
  List.iter
    (fun k ->
      List.iter
        (fun id -> Hashtbl.replace table id (1 + Option.value ~default:0 (Hashtbl.find_opt table id)))
        k.Runtime.Plan.prims)
    plan.Runtime.Plan.kernels;
  Hashtbl.iter
    (fun id count ->
      if count > 1 then
        Printf.printf "primitive %d (%s) executed %d times\n" id
          (Ir.Primitive.to_string (Ir.Graph.op r.Korch.Orchestrator.graph id))
          count)
    table;

  (* And the answer is still right. *)
  let x = Tensor.Nd.randn (Tensor.Rng.create 5) [| 1; 1024; 16 |] in
  let expected = Runtime.Interp.run g ~inputs:[ ("tokens", x) ] in
  let got = Runtime.Executor.run r.Korch.Orchestrator.graph plan ~inputs:[ ("tokens", x) ] in
  List.iter2
    (fun e a -> Printf.printf "max |diff| vs reference: %g\n" (Tensor.Nd.max_abs_diff e a))
    expected got
