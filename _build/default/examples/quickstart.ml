(* Quickstart: build a small computation graph, let Korch find the optimal
   kernel orchestration, inspect the plan, and execute it.

   Run with: dune exec examples/quickstart.exe *)

open Ir

let () =
  (* 1. Build a computation graph: y = relu (softmax (x @ W1) @ W2). *)
  let b = Opgraph.B.create () in
  let x = Opgraph.B.input b "x" [| 32; 64 |] in
  let w1 = Opgraph.B.const b (Const.randn_scaled [| 64; 64 |] 1 0.125) in
  let w2 = Opgraph.B.const b (Const.randn_scaled [| 64; 16 |] 2 0.125) in
  let h = Opgraph.B.add b Optype.MatMul [ x; w1 ] in
  let p = Opgraph.B.add b (Optype.Softmax 1) [ h ] in
  let o = Opgraph.B.add b Optype.MatMul [ p; w2 ] in
  let y = Opgraph.B.add b Optype.Relu [ o ] in
  Opgraph.B.set_outputs b [ y ];
  let graph = Opgraph.B.finish b in
  Format.printf "computation graph:@.%a@." Opgraph.pp graph;

  (* 2. Orchestrate: fission -> transformations -> kernel identification ->
     profiling -> BLP -> executable plan. *)
  let result = Korch.Orchestrator.run Korch.Orchestrator.default_config graph in
  print_string (Korch.Report.summary result);
  Format.printf "@.%a@." Runtime.Plan.pp result.Korch.Orchestrator.plan;

  (* 3. Execute the plan and check it against the reference interpreter. *)
  let input = Tensor.Nd.randn (Tensor.Rng.create 7) [| 32; 64 |] in
  let expected = Runtime.Interp.run graph ~inputs:[ ("x", input) ] in
  let got =
    Runtime.Executor.run result.Korch.Orchestrator.graph result.Korch.Orchestrator.plan
      ~inputs:[ ("x", input) ]
  in
  (match (expected, got) with
  | [ e ], [ g ] ->
    Printf.printf "plan output matches interpreter: max |diff| = %g\n"
      (Tensor.Nd.max_abs_diff e g)
  | _ -> assert false);

  (* 4. Compare against a PyTorch-style eager baseline under the same GPU
     cost model. *)
  let env =
    Baselines.Common.make_env ~spec:Gpu.Spec.v100 ~precision:Gpu.Precision.FP32 graph
  in
  let eager = Baselines.Eager.run env in
  Printf.printf "eager: %.2f us in %d kernels; korch: %.2f us in %d kernels (%.2fx)\n"
    eager.Runtime.Plan.total_latency_us
    (Runtime.Plan.kernel_count eager)
    result.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us
    (Runtime.Plan.kernel_count result.Korch.Orchestrator.plan)
    (eager.Runtime.Plan.total_latency_us
    /. result.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us)
