(* Attention + operator fission walkthrough (the paper's Figures 2-4).

   Shows the softmax fission rule, the primitive-graph transformations that
   turn its reduce into a MatMul, and how the BLP maps softmax primitives
   into several kernels fused with their neighbours.

   Run with: dune exec examples/attention_fission.exe *)

open Ir

let () =
  let g = Models.Segformer.attention_subgraph ~batch:1 ~tokens:256 ~channels:64 () in
  Format.printf "self-attention computation graph (%d operators):@.%a@."
    (Graph.length g) Opgraph.pp g;

  (* Operator fission (Figure 3): softmax becomes exp / reduce / broadcast
     / div. *)
  let pg, _mapping = Fission.Engine.run g in
  Format.printf "@.after operator fission (%d primitives):@.%a@."
    (List.length (Primgraph.non_source_nodes pg))
    Primgraph.pp pg;

  (* Primitive-graph transformations (Figure 2b): the reduce can become a
     MatMul against a ones vector, the div can swap with the next MatMul. *)
  let optimized = Transform.Optimizer.optimize pg in
  Format.printf "@.after transformations (%d primitives):@.%a@."
    (List.length (Primgraph.non_source_nodes optimized))
    Primgraph.pp optimized;

  (* Full orchestration (Figure 4). *)
  let r = Korch.Orchestrator.run Korch.Orchestrator.default_config g in
  Format.printf "@.Korch plan:@.%a@." Runtime.Plan.pp r.Korch.Orchestrator.plan;

  (* Verify the whole journey preserved semantics. *)
  let rng = Tensor.Rng.create 99 in
  let inputs =
    [ ("q", Tensor.Nd.randn rng [| 1; 256; 64 |]);
      ("k", Tensor.Nd.randn rng [| 1; 256; 64 |]);
      ("v", Tensor.Nd.randn rng [| 1; 256; 64 |]) ]
  in
  let reference = Runtime.Interp.run g ~inputs in
  let from_plan =
    Runtime.Executor.run r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan ~inputs
  in
  List.iter2
    (fun e a -> Printf.printf "max |diff| vs reference: %g\n" (Tensor.Nd.max_abs_diff e a))
    reference from_plan
