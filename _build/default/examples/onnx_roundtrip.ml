(* ONNX-JSON interchange example: export a model, re-import it, fission it
   and export the primitive graph — the §5.1 workflow where both the
   fission engine's input and output live in the interchange format.

   Run with: dune exec examples/onnx_roundtrip.exe *)

let () =
  let g = Models.Registry.segformer.Models.Registry.build_small () in
  let doc = Onnx.Serialize.opgraph_to_string g in
  Printf.printf "serialized operator graph: %d bytes of JSON\n" (String.length doc);

  let g' = Onnx.Deserialize.opgraph_of_string doc in
  Printf.printf "re-imported %d nodes, %d outputs\n" (Ir.Graph.length g')
    (List.length g'.Ir.Graph.outputs);

  (* The fission engine consumes and produces the interchange format. *)
  let pg, _ = Fission.Engine.run g' in
  let prim_doc = Onnx.Serialize.primgraph_to_string pg in
  Printf.printf "fissioned primitive graph: %d primitives, %d bytes of JSON\n"
    (List.length (Ir.Primgraph.non_source_nodes pg))
    (String.length prim_doc);
  let pg' = Onnx.Deserialize.primgraph_of_string prim_doc in

  (* Round-tripped graphs behave identically. *)
  let x = Tensor.Nd.randn (Tensor.Rng.create 13) [| 1; 3; 32; 32 |] in
  let a = Runtime.Interp.run g ~inputs:[ ("input", x) ] in
  let b = Runtime.Prim_interp.run pg' ~inputs:[ ("input", x) ] in
  List.iter2
    (fun e g -> Printf.printf "round-trip max |diff|: %g\n" (Tensor.Nd.max_abs_diff e g))
    a b;

  (* Files work too. *)
  let path = Filename.temp_file "korch" ".json" in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s\n" path
