examples/onnx_roundtrip.mli:
