examples/attention_fission.ml: Fission Format Graph Ir Korch List Models Opgraph Primgraph Printf Runtime Tensor Transform
