examples/onnx_roundtrip.ml: Filename Fission Ir List Models Onnx Printf Runtime String Tensor
