examples/efficientvit_case_study.ml: Baselines Gpu Hashtbl Ir Korch List Models Option Printf Runtime String Tensor
