examples/baseline_comparison.ml: Array Baselines Fission Float Gpu Graph Ir Korch List Models Optype Printf Runtime String Sys Tensor
