examples/quickstart.ml: Baselines Const Format Gpu Ir Korch Opgraph Optype Printf Runtime Tensor
