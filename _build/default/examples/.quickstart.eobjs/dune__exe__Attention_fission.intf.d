examples/attention_fission.mli:
