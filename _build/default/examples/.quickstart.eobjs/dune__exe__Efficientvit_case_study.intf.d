examples/efficientvit_case_study.mli:
