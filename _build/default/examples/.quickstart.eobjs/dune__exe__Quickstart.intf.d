examples/quickstart.mli:
