(* korch_serve — crash-safe orchestration daemon and its client.

   Subcommands:
     korch_serve daemon [...]        run the server (Unix-domain socket)
     korch_serve optimize -m MODEL   ask a running daemon for a plan
     korch_serve run -m MODEL        plan + execute, print output checksums
     korch_serve health|stats|drain  admin verbs

   Every client subcommand prints the daemon's JSON response on stdout
   and exits 0 on status ok/degraded/draining, 1 otherwise — so shell
   smoke tests can gate on the exit code. *)

open Cmdliner

let spec_conv =
  let parse s =
    match Gpu.Spec.by_name s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown GPU %S (p100|v100|a100|h100)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Gpu.Spec.name)

let precision_conv =
  let parse s =
    match Gpu.Precision.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown precision %S (fp32|tf32|fp16)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Gpu.Precision.to_string p))

let inject_conv =
  let parse s =
    match Faults.parse_rule s with Ok r -> Ok r | Error m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun ppf (site, spec) ->
        Format.fprintf ppf "%s:%s" (Faults.site_to_string site) (Faults.spec_to_string spec) )

let socket_arg =
  let doc = "Unix-domain socket path the daemon listens on." in
  Arg.(
    value
    & opt string Serve.Server.default_config.Serve.Server.socket_path
    & info [ "socket" ] ~docv:"PATH" ~doc)

(* ------------------------------- daemon ------------------------------- *)

let daemon_action socket cache_dir jobs queue_limit gpu precision inject fault_seed
    metrics_out verbose =
  if inject <> [] then Faults.install ~seed:fault_seed inject;
  Serve.Server.run
    {
      Serve.Server.default_config with
      Serve.Server.socket_path = socket;
      cache_dir;
      jobs;
      queue_limit;
      gpu;
      precision;
      metrics_out;
      verbose;
    }

let daemon_cmd =
  let cache_dir =
    Arg.(
      value
      & opt string Serve.Server.default_config.Serve.Server.cache_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Durable plan-cache directory. Entries survive kill -9; a restarted daemon \
             warm-hits every previously orchestrated model.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Request-handling worker domains (<= 1 = inline).")
  in
  let queue_limit =
    Arg.(
      value & opt int 16
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Max in-flight optimize/run requests; beyond this the daemon answers \
             {status: overloaded} immediately (clients back off and retry).")
  in
  let gpu = Arg.(value & opt spec_conv Gpu.Spec.v100 & info [ "gpu" ] ~docv:"GPU" ~doc:"Default target GPU (requests may override).") in
  let precision =
    Arg.(
      value
      & opt precision_conv Gpu.Precision.FP32
      & info [ "precision" ] ~docv:"PREC" ~doc:"Default precision (requests may override).")
  in
  let inject =
    Arg.(
      value & opt_all inject_conv []
      & info [ "inject" ] ~docv:"SITE:SPEC"
          ~doc:
            "Install a deterministic fault-injection policy in the daemon (same grammar as \
             `korch optimize --inject'; new sites: $(b,serve_accept) degrades the admission \
             path, $(b,cache_io) fails plan-cache disk touches). Requests are still served \
             down the degradation ladder.")
  in
  let fault_seed =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for probabilistic fault rules.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Republish the full stats snapshot (atomic rename) to FILE after every request, \
             so the file is current even after a kill -9.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"One log line per request.") in
  Cmd.v
    (Cmd.info "daemon" ~doc:"Run the korch_serve daemon")
    Term.(
      const daemon_action $ socket_arg $ cache_dir $ jobs $ queue_limit $ gpu $ precision
      $ inject $ fault_seed $ metrics_out $ verbose)

(* ------------------------------- client ------------------------------- *)

let exit_of_response (resp : Onnx.Json.t) : int =
  match Onnx.Json.member "status" resp with
  | Some (Onnx.Json.Str ("ok" | "degraded" | "draining")) -> 0
  | _ -> 1

let send socket (req : Serve.Protocol.request) =
  match Serve.Client.request ~socket (Serve.Protocol.request_to_json req) with
  | resp ->
    print_endline (Onnx.Json.to_string resp);
    exit (exit_of_response resp)
  | exception Serve.Client.Request_failed msg ->
    Printf.eprintf "korch_serve: %s\n" msg;
    exit 1

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "model" ] ~docv:"MODEL" ~doc:"Model from the zoo (see `korch list').")

let graph_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "graph" ] ~docv:"FILE" ~doc:"ONNX-JSON operator-graph document to send inline.")

let small_arg = Arg.(value & flag & info [ "small" ] ~doc:"Use the model's reduced instance.")
let batch_arg = Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request orchestration deadline: the solver's node budget shrinks as it \
           approaches; segments starting past it take the unfused floor. The response \
           records the tier the request landed on.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Bypass the plan-cache lookup for this request.")

let backend_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "backend" ] ~docv:"BACKEND" ~doc:"Execution backend for `run' (interp or native).")

let gpu_opt_arg =
  Arg.(value & opt (some string) None & info [ "gpu" ] ~docv:"GPU" ~doc:"Target GPU override.")

let precision_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "precision" ] ~docv:"PREC" ~doc:"Precision override.")

let request_action verb socket model graph small batch gpu precision deadline_ms backend
    no_cache =
  let graph_doc =
    match graph with
    | None -> None
    | Some path ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
  in
  send socket
    {
      Serve.Protocol.verb;
      model;
      graph_doc;
      small;
      batch;
      gpu;
      precision;
      deadline_ms;
      backend;
      no_cache;
      batch_lo = None;
      batch_hi = None;
    }

let heavy_cmd verb doc =
  Cmd.v (Cmd.info verb ~doc)
    Term.(
      const (request_action verb) $ socket_arg $ model_arg $ graph_arg $ small_arg $ batch_arg
      $ gpu_opt_arg $ precision_opt_arg $ deadline_arg $ backend_arg $ no_cache_arg)

let lo_arg =
  Arg.(value & opt int 1 & info [ "lo" ] ~docv:"N" ~doc:"First batch the table covers.")

let hi_arg =
  Arg.(value & opt int 8 & info [ "hi" ] ~docv:"N" ~doc:"Last batch the table covers.")

let table_action socket model small gpu precision lo hi no_cache =
  send socket
    {
      Serve.Protocol.default_request with
      Serve.Protocol.verb = "table";
      model;
      small;
      gpu;
      precision;
      batch_lo = Some lo;
      batch_hi = Some hi;
      no_cache;
    }

let table_cmd =
  Cmd.v
    (Cmd.info "table"
       ~doc:
         "Ask a running daemon for a batch-range plan table: one orchestration sweep over \
          probe batches, answered with per-range plans and cost-model crossover batches.")
    Term.(
      const table_action $ socket_arg $ model_arg $ small_arg $ gpu_opt_arg
      $ precision_opt_arg $ lo_arg $ hi_arg $ no_cache_arg)

let admin_action verb socket =
  send socket { Serve.Protocol.default_request with Serve.Protocol.verb }

let admin_cmd verb doc =
  Cmd.v (Cmd.info verb ~doc) Term.(const (admin_action verb) $ socket_arg)

let () =
  let info =
    Cmd.info "korch_serve" ~version:"1.0.0"
      ~doc:"Crash-safe serving daemon for the Korch orchestrator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            daemon_cmd;
            heavy_cmd "optimize" "Ask a running daemon for an executable plan";
            heavy_cmd "run" "Plan and execute on the daemon, printing output checksums";
            table_cmd;
            admin_cmd "health" "Liveness probe";
            admin_cmd "stats" "Latency percentiles, queue depth, cache hit-rate, tier counts";
            admin_cmd "drain" "Stop admitting work; the daemon exits when in-flight requests finish";
          ]))
