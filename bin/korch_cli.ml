(* korch — command-line interface to the Korch tensor program optimizer.

   Subcommands:
     korch list                         available models and GPUs
     korch optimize -m MODEL [...]      orchestrate a model, print the report
     korch compare -m MODEL [...]       Korch vs all fusion baselines
     korch export -m MODEL -o FILE      write the model as ONNX-JSON
     korch run FILE                     optimize + execute an ONNX-JSON graph
     korch check [-m MODEL | FILE]      static verification of every pipeline stage
     korch analyze [-m MODEL | FILE]    abstract-interpretation lint (korch-lint/1)
     korch table -m MODEL --lo A --hi B batch-parametric plan table with crossovers *)

open Cmdliner

let spec_conv =
  let parse s =
    match Gpu.Spec.by_name s with
    | Some spec -> Ok spec
    | None -> Error (`Msg (Printf.sprintf "unknown GPU %S (p100|v100|a100|h100)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf s.Gpu.Spec.name)

let precision_conv =
  let parse s =
    match Gpu.Precision.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown precision %S (fp32|tf32|fp16)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Gpu.Precision.to_string p))

let model_arg =
  let doc = "Model from the zoo (see `korch list')." in
  Arg.(required & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let gpu_arg =
  let doc = "Target GPU model." in
  Arg.(value & opt spec_conv Gpu.Spec.v100 & info [ "gpu" ] ~docv:"GPU" ~doc)

let precision_arg =
  let doc = "Numeric precision." in
  Arg.(value & opt precision_conv Gpu.Precision.FP32 & info [ "precision" ] ~docv:"PREC" ~doc)

let batch_arg =
  let doc = "Batch size." in
  Arg.(value & opt int 1 & info [ "b"; "batch" ] ~docv:"N" ~doc)

let small_arg =
  let doc = "Use the executable test-scale variant of the model." in
  Arg.(value & flag & info [ "small" ] ~doc)

let window_arg =
  let doc = "Partition window size in primitives." in
  Arg.(value & opt int 12 & info [ "window" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains solving partition segments in parallel (1 = sequential; \
     the resulting plan is identical for any value)."
  in
  Arg.(
    value
    & opt int (Parallel.Domain_pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Print the full kernel plan." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let json_arg =
  let doc =
    "Print the machine-readable JSON report (schema korch-report/1) on stdout instead of \
     the text summary; diagnostics go to stderr."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_arg =
  let doc =
    "Record the orchestration as a Chrome trace-event file (open at chrome://tracing or \
     ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] under span collection when [--trace FILE] was given. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let r, doc = Obs.Trace.with_tracing f in
    let oc = open_out path in
    output_string oc doc;
    close_out oc;
    Printf.eprintf "wrote trace to %s\n%!" path;
    r

let report_meta ~source ~gpu ~precision ~batch ~jobs extra =
  [
    ("model", Obs.Jsonw.Str source);
    ("gpu", Obs.Jsonw.Str gpu.Gpu.Spec.name);
    ("precision", Obs.Jsonw.Str (Gpu.Precision.to_string precision));
    ("batch", Obs.Jsonw.Int batch);
    ("jobs", Obs.Jsonw.Int jobs);
  ]
  @ extra

let inject_conv =
  let parse s =
    match Faults.parse_rule s with Ok r -> Ok r | Error m -> Error (`Msg m)
  in
  Arg.conv
    ( parse,
      fun ppf (site, spec) ->
        Format.fprintf ppf "%s:%s" (Faults.site_to_string site) (Faults.spec_to_string spec) )

let inject_arg =
  let doc =
    "Inject a deterministic synthetic fault at SITE \
     (profiler|ilp_solve|enumerate|transform|worker|onnx_parse|analysis|codegen_compile\
     |serve_accept|cache_io) \
     according to SPEC \
     ($(b,always), $(b,nth=K) for the K-th call, or $(b,p=P) for seeded probability P). \
     Repeatable. The orchestrator degrades the affected segment down its fallback ladder \
     instead of failing; the per-segment outcome table shows where each landed. \
     $(b,codegen_compile) fires in the native backend's kernel compiler: the affected \
     kernel degrades to the interpreter, never the run."
  in
  Arg.(value & opt_all inject_conv [] & info [ "inject" ] ~docv:"SITE:SPEC" ~doc)

let backend_conv =
  let parse s =
    match Runtime.Backend.of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown backend %S (expected interp or native)" s))
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Runtime.Backend.to_string b))

let backend_arg =
  let doc =
    "Execution backend for the stitched plan: $(b,interp) (the reference primitive \
     interpreter) or $(b,native) (C-compiled kernels, differentially verified against the \
     interpreter before first use, with per-kernel fallback). Defaults to $(b,KORCH_BACKEND) \
     from the environment, else interp."
  in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"BACKEND" ~doc)

let fault_seed_arg =
  let doc =
    "Seed for probabilistic fault rules: the same seed and rules reproduce the same \
     injections, and therefore the same degraded plan, on every run."
  in
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N" ~doc)

(* Install the CLI-level injection policy before anything (including ONNX
   parsing) runs, so every site — not just the orchestrated ones — can
   fire. *)
let install_faults rules seed = if rules <> [] then Faults.install ~seed rules

(* Per-segment outcome table, shown whenever a segment degraded (or on
   -v): which ladder tier each segment landed on and why. *)
let print_outcomes ~verbose (r : Korch.Orchestrator.result) =
  if verbose || r.Korch.Orchestrator.degraded_segments <> [] then
    print_string (Korch.Report.segment_table r)

let find_model name =
  match Models.Registry.find name with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown model %S; available: %s\n" name
      (String.concat ", " (List.map (fun e -> e.Models.Registry.name) Models.Registry.all));
    exit 2

let build_graph entry ~small ~batch =
  let g =
    if small then entry.Models.Registry.build_small ~batch ()
    else entry.Models.Registry.build ~batch ()
  in
  Fission.Canonicalize.fold_batch_norms g

let config ~spec ~precision ~window ~jobs =
  { Korch.Orchestrator.default_config with
    Korch.Orchestrator.spec; precision; partition_max_prims = window; jobs }

(* ------------------------- list ------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "models:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-14s %s (paper input %dx%d)\n" e.Models.Registry.name
          e.Models.Registry.description e.Models.Registry.paper_resolution
          e.Models.Registry.paper_resolution)
      Models.Registry.all;
    Printf.printf "GPUs:\n";
    List.iter
      (fun (s : Gpu.Spec.t) ->
        Printf.printf "  %-6s %5.1f FP32 TFLOPS, %6.0f GB/s\n" s.Gpu.Spec.name
          s.Gpu.Spec.fp32_tflops s.Gpu.Spec.mem_bw_gb_s)
      Gpu.Spec.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List models and GPU targets")
    Term.(const run $ const ())

(* ----------------------- optimize ----------------------- *)

let optimize_action model gpu precision batch small window jobs verbose dot streams inject
    fault_seed json trace =
  install_faults inject fault_seed;
  (* Info lines must not corrupt the JSON document on stdout. *)
  let say fmt = Printf.ksprintf (fun s -> if json then prerr_string s else print_string s) fmt in
  let entry = find_model model in
  let g = build_graph entry ~small ~batch in
  let t0 = Obs.Clock.now_s () in
  let r =
    with_trace trace (fun () -> Korch.Orchestrator.run (config ~spec:gpu ~precision ~window ~jobs) g)
  in
  let wall_s = Obs.Clock.now_s () -. t0 in
  if json then
    print_endline
      (Korch.Report.json_string
         ~meta:
           (report_meta ~source:model ~gpu ~precision ~batch ~jobs
              [ ("wall_s", Obs.Jsonw.Float wall_s) ])
         r)
  else begin
    Printf.printf "%s on %s/%s (batch %d)\n" model gpu.Gpu.Spec.name
      (Gpu.Precision.to_string precision) batch;
    print_string (Korch.Report.summary r);
    Printf.printf "  wall-clock opt  : %.1f s\n" wall_s;
    print_outcomes ~verbose r;
    if verbose then Format.printf "%a" Runtime.Plan.pp r.Korch.Orchestrator.plan
  end;
  (match dot with
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Runtime.Dot_export.plan_to_dot r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan);
    close_out oc;
    say "wrote kernel-cluster DOT to %s\n" path
  | None -> ());
  if streams > 1 then begin
    let a =
      Runtime.Multistream.analyze r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan ~streams
    in
    say "projected onto %d streams: %.2f us (critical path %.2f us)\n" streams
      a.Runtime.Multistream.makespan_us a.Runtime.Multistream.critical_path_us
  end

let optimize_cmd =
  Cmd.v
    (Cmd.info "optimize" ~doc:"Discover the optimal kernel orchestration for a model")
    Term.(
      const optimize_action $ model_arg $ gpu_arg $ precision_arg $ batch_arg $ small_arg
      $ window_arg $ jobs_arg $ verbose_arg
      $ Arg.(value & opt (some string) None
             & info [ "dot" ] ~docv:"FILE" ~doc:"Write the plan as a Graphviz DOT file.")
      $ Arg.(value & opt int 1
             & info [ "streams" ] ~docv:"N"
                 ~doc:"Also project the plan onto N concurrent streams.")
      $ inject_arg $ fault_seed_arg $ json_arg $ trace_arg)

(* ----------------------- compare ----------------------- *)

let compare_action model gpu precision batch small window jobs =
  let entry = find_model model in
  let g = build_graph entry ~small ~batch in
  let env = Baselines.Common.make_env ~spec:gpu ~precision g in
  Printf.printf "%-12s %12s %9s\n" "strategy" "latency(us)" "kernels";
  List.iter
    (fun (name, run) ->
      let plan = run env in
      Printf.printf "%-12s %12.1f %9d\n" name plan.Runtime.Plan.total_latency_us
        (Runtime.Plan.kernel_count plan))
    [ ("eager", Baselines.Eager.run); ("greedy-tvm", Baselines.Greedy_tvm.run);
      ("tensorrt", Baselines.Trt.run); ("dp-chain", Baselines.Dp_chain.run) ];
  let r = Korch.Orchestrator.run (config ~spec:gpu ~precision ~window ~jobs) g in
  Printf.printf "%-12s %12.1f %9d   (%d redundant primitive executions)\n" "korch"
    r.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us
    (Runtime.Plan.kernel_count r.Korch.Orchestrator.plan)
    (Runtime.Plan.redundancy r.Korch.Orchestrator.plan)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare Korch against the fusion baselines")
    Term.(
      const compare_action $ model_arg $ gpu_arg $ precision_arg $ batch_arg $ small_arg
      $ window_arg $ jobs_arg)

(* ------------------------ export ------------------------ *)

let export_action model batch small output =
  let entry = find_model model in
  let g = build_graph entry ~small ~batch in
  let doc = Onnx.Serialize.opgraph_to_string g in
  let oc = open_out output in
  output_string oc doc;
  close_out oc;
  Printf.printf "wrote %s (%d bytes, %d nodes)\n" output (String.length doc) (Ir.Graph.length g)

let export_cmd =
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output path for the ONNX-JSON document.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a model as an ONNX-JSON document")
    Term.(const export_action $ model_arg $ batch_arg $ small_arg $ output)

(* ------------------------- check ------------------------ *)

let print_report ~verbose title report =
  let shown =
    if verbose then report
    else
      List.filter
        (fun (d : Verify.Diagnostics.diag) -> d.Verify.Diagnostics.severity <> Verify.Diagnostics.Info)
        report
  in
  let e, w, i = Verify.Diagnostics.count_severity report in
  Printf.printf "%-22s %d error(s), %d warning(s), %d info\n" title e w i;
  List.iter (fun d -> Format.printf "  %a@." Verify.Diagnostics.pp_diag d) shown

let check_action model file gpu precision batch small window jobs rules lint_seed verbose =
  let g =
    match (model, file) with
    | Some m, None -> build_graph (find_model m) ~small ~batch
    | None, Some f -> begin
      let ic = open_in f in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      match Onnx.Deserialize.opgraph_of_string doc with
      | g -> g
      | exception e ->
        Printf.printf "%s does not parse as a korch-onnx-json graph: %s\ncheck: FAILED\n" f
          (Printexc.to_string e);
        exit 1
    end
    | _ ->
      prerr_endline "check: specify exactly one of -m MODEL or a FILE argument";
      exit 2
  in
  let failed = ref false in
  (* Stop at the first stage with errors: downstream stages run on its
     output and would only cascade. *)
  let stage title report =
    print_report ~verbose title report;
    if Verify.Diagnostics.has_errors report then begin
      print_endline "check: FAILED";
      exit 1
    end
  in
  stage "operator graph" (Verify.opgraph_check g);
  let pg, _ = Fission.Engine.run g in
  stage "fissioned graph" (Verify.graph_check pg);
  (* The orchestrator's own invariant checking is off here so a broken
     stage surfaces as a printed report rather than an exception. *)
  let cfg =
    { (config ~spec:gpu ~precision ~window ~jobs) with
      Korch.Orchestrator.check_invariants = false }
  in
  (match Korch.Orchestrator.run_primgraph cfg pg with
  | r ->
    stage "stitched graph" (Verify.graph_check r.Korch.Orchestrator.graph);
    stage "kernel plan"
      (Verify.plan_check r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan)
  | exception Korch.Orchestrator.Orchestration_failed e ->
    failed := true;
    Printf.printf "orchestration failed: %s\n" (Korch.Orchestrator.Error.to_string e));
  if rules then stage "rewrite rules" (Verify.lint_rules ~seed:lint_seed ());
  if !failed then begin
    print_endline "check: FAILED";
    exit 1
  end
  else print_endline "check: OK"

let check_cmd =
  let model =
    Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:"Model from the zoo to check (see `korch list').")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"ONNX-JSON operator graph to check instead of a zoo model.")
  in
  let rules =
    Arg.(value & flag & info [ "rules" ]
           ~doc:"Also lint every fission and transformation rewrite rule.")
  in
  let lint_seed =
    Arg.(value & opt int 0x5eed & info [ "lint-seed" ] ~docv:"N"
           ~doc:"Seed for the rewrite-rule linter's random pattern instances (with \
                 $(b,--rules)). CI rotates this so successive runs exercise fresh \
                 instances.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically verify a model end to end: operator graph, fissioned \
             primitive graph, stitched graph and kernel plan")
    Term.(
      const check_action $ model $ file $ gpu_arg $ precision_arg $ batch_arg $ small_arg
      $ window_arg $ jobs_arg $ rules $ lint_seed $ verbose_arg)

(* ------------------------ analyze ----------------------- *)

let analyze_action model file gpu precision batch small window jobs with_plan json output
    verbose =
  let g, source =
    match (model, file) with
    | Some m, None -> (build_graph (find_model m) ~small ~batch, m)
    | None, Some f -> begin
      let ic = open_in f in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      match Onnx.Deserialize.opgraph_of_string doc with
      | g -> (g, Filename.basename f)
      | exception Onnx.Deserialize.Format_error m ->
        Printf.eprintf "%s: %s\n" f m;
        exit 1
    end
    | _ ->
      prerr_endline "analyze: specify exactly one of -m MODEL or a FILE argument";
      exit 2
  in
  let pg, _ = Fission.Engine.run g in
  let bytes_per_element = Gpu.Precision.bytes_per_element precision in
  let report = Analysis.graph_report ~bytes_per_element pg in
  let report =
    if not with_plan then report
    else begin
      (* Orchestrate with the built-in invariant checks off so a hazard
         surfaces as a printed finding rather than an exception. *)
      let cfg =
        { (config ~spec:gpu ~precision ~window ~jobs) with
          Korch.Orchestrator.check_invariants = false }
      in
      let r = Korch.Orchestrator.run_primgraph cfg pg in
      let mp =
        Runtime.Memplan.analyze ~bytes_per_element r.Korch.Orchestrator.graph
          r.Korch.Orchestrator.plan
      in
      report
      @ Analysis.plan_report ~bytes_per_element r.Korch.Orchestrator.graph
          r.Korch.Orchestrator.plan mp
    end
  in
  let doc =
    Analysis.Lint.json_string
      ~meta:
        [
          ("source", Obs.Jsonw.Str source);
          ("precision", Obs.Jsonw.Str (Gpu.Precision.to_string precision));
          ("batch", Obs.Jsonw.Int batch);
          ("plan_checked", Obs.Jsonw.Bool with_plan);
        ]
      report
  in
  (match output with
  | Some path ->
    let oc = open_out path in
    output_string oc doc;
    close_out oc;
    Printf.eprintf "wrote findings to %s\n%!" path
  | None -> ());
  if json then print_endline doc
  else begin
    let shown =
      if verbose then report
      else
        List.filter
          (fun (d : Verify.Diagnostics.diag) ->
            d.Verify.Diagnostics.severity <> Verify.Diagnostics.Info)
          report
    in
    List.iter (fun d -> Format.printf "  %a@." Verify.Diagnostics.pp_diag d) shown;
    let e, w, i = Verify.Diagnostics.count_severity report in
    Printf.printf "analyze %s: %d error(s), %d warning(s), %d info\n" source e w i
  end;
  if Analysis.Lint.exceeds_warning report then exit 1

let analyze_cmd =
  let model =
    Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:"Zoo model to analyze (see `korch list').")
  in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"ONNX-JSON operator graph to analyze instead of a zoo model.")
  in
  let with_plan =
    Arg.(value & flag & info [ "plan" ]
           ~doc:"Also orchestrate the model and run the memory-planner hazard \
                 cross-check on the resulting plan.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also write the korch-lint/1 JSON findings document to FILE.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the korch-lint/1 JSON findings document on stdout instead of \
                 the text listing.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Lint a model with the abstract-interpretation analyses: value ranges \
             (div-by-zero, log/sqrt domain, exp overflow), dead code, and optionally \
             the memory-planner hazard cross-check. Exits 1 on any finding above \
             warning.")
    Term.(
      const analyze_action $ model $ file $ gpu_arg $ precision_arg $ batch_arg $ small_arg
      $ window_arg $ jobs_arg $ with_plan $ json $ output $ verbose_arg)

(* -------------------------- run ------------------------- *)

let run_action file model gpu precision batch small window jobs verbose inject fault_seed json
    trace assert_det mem_report backend =
  install_faults inject fault_seed;
  let backend = match backend with Some b -> b | None -> Runtime.Backend.default () in
  let g, source =
    match (model, file) with
    | Some m, None -> (build_graph (find_model m) ~small ~batch, m)
    | None, Some f -> begin
      let ic = open_in f in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      match Onnx.Deserialize.opgraph_of_string doc with
      | g -> (g, Filename.basename f)
      | exception Onnx.Deserialize.Format_error m ->
        Printf.eprintf "%s: %s\n" f m;
        exit 1
    end
    | _ ->
      prerr_endline "run: specify exactly one of -m MODEL or a FILE argument";
      exit 2
  in
  let cfg = config ~spec:gpu ~precision ~window ~jobs in
  let r = with_trace trace (fun () -> Korch.Orchestrator.run cfg g) in
  (* [--assert-deterministic]: re-orchestrate at a different worker count
     (and with tracing off) and require the bit-identical plan — the
     reproducibility contract the solver's node-count budget exists for. *)
  if assert_det then begin
    let alt_jobs = if jobs = 1 then max 2 (Parallel.Domain_pool.default_jobs ()) else 1 in
    let r2 = Korch.Orchestrator.run { cfg with Korch.Orchestrator.jobs = alt_jobs } g in
    if r.Korch.Orchestrator.plan = r2.Korch.Orchestrator.plan then
      Printf.eprintf "deterministic: plans bit-identical at -j %d and -j %d\n%!" jobs alt_jobs
    else begin
      Printf.eprintf "run: NOT DETERMINISTIC — plans differ between -j %d and -j %d\n%!" jobs
        alt_jobs;
      exit 3
    end
  end;
  (* Execute the plan on random inputs as a functional check. *)
  let inputs =
    Array.to_list g.Ir.Graph.nodes
    |> List.filter_map (fun nd ->
           match nd.Ir.Graph.op with
           | Ir.Optype.Input name ->
             Some (name, Tensor.Nd.randn (Tensor.Rng.create 1) nd.Ir.Graph.shape)
           | _ -> None)
  in
  let expected = Runtime.Interp.run g ~inputs in
  let exec_stats = Runtime.Backend.fresh_exec_stats () in
  let got =
    Runtime.Executor.run ~backend ~exec_stats r.Korch.Orchestrator.graph
      r.Korch.Orchestrator.plan ~inputs
  in
  let diff =
    List.fold_left2 (fun a e g -> Float.max a (Tensor.Nd.max_abs_diff e g)) 0.0 expected got
  in
  (* Fold measured native-kernel wall-clocks into the profile database so
     the cost model accumulates calibration data. *)
  let recorded =
    Korch.Calibrate.record ~spec:gpu ~precision r.Korch.Orchestrator.graph
      r.Korch.Orchestrator.plan exec_stats
  in
  (* [--mem-report]: re-execute with the memory planner's buffer-reuse
     mode, require bit-identical outputs, and print the planner + arena
     accounting. *)
  if mem_report then begin
    let stats = Runtime.Executor.fresh_stats () in
    let reused =
      Runtime.Executor.run ~reuse:true ~stats r.Korch.Orchestrator.graph
        r.Korch.Orchestrator.plan ~inputs
    in
    let bits_equal a b =
      Tensor.Shape.equal (Tensor.Nd.shape a) (Tensor.Nd.shape b)
      && Array.for_all2
           (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
           a.Tensor.Nd.data b.Tensor.Nd.data
    in
    if not (List.for_all2 bits_equal got reused) then begin
      Printf.eprintf "run: --mem-report outputs NOT bit-identical to the no-reuse executor\n%!";
      exit 4
    end;
    let mp =
      Runtime.Memplan.analyze r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan
    in
    let s = Runtime.Memplan.stats mp in
    Format.printf "memory plan (executor, 8 B/elem): %a@." Runtime.Memplan.pp_stats s;
    let m = r.Korch.Orchestrator.memory in
    Format.printf "memory plan (device, %d B/elem): %a@."
      (Gpu.Precision.bytes_per_element precision)
      Runtime.Memplan.pp_stats m;
    Printf.printf
      "arena: %d evals (%d into recycled buffers, %d reshape aliases), %d buffers freed \
       early, %d fresh elements vs %d without reuse; outputs bit-identical\n"
      stats.Runtime.Executor.evals stats.Runtime.Executor.into_evals
      stats.Runtime.Executor.aliases stats.Runtime.Executor.freed
      stats.Runtime.Executor.fresh_elems (s.Runtime.Memplan.no_reuse_bytes / 8)
  end;
  if json then
    print_endline
      (Korch.Report.json_string
         ~meta:
           (report_meta ~source ~gpu ~precision ~batch ~jobs
              [ ("max_abs_diff", Obs.Jsonw.Float diff) ])
         ~execution:(Korch.Report.execution_to_json ~backend exec_stats)
         r)
  else begin
    print_string (Korch.Report.summary r);
    print_outcomes ~verbose r;
    if verbose then Format.printf "%a" Runtime.Plan.pp r.Korch.Orchestrator.plan;
    (match backend with
    | Runtime.Backend.Interp -> ()
    | Runtime.Backend.Native ->
      Printf.printf "backend native: %d kernel(s) compiled+verified, %d on the interpreter"
        exec_stats.Runtime.Backend.native_kernels exec_stats.Runtime.Backend.interp_kernels;
      if recorded > 0 then Printf.printf "; %d measured timing(s) recorded" recorded;
      print_newline ();
      List.iter
        (fun (ki, reason) -> Printf.printf "  kernel %d fell back: %s\n" ki reason)
        (List.sort compare exec_stats.Runtime.Backend.fallbacks);
      if verbose then
        List.iter
          (fun (ki, us) -> Printf.printf "  kernel %d: %.2f us measured\n" ki us)
          (List.sort compare exec_stats.Runtime.Backend.kernel_times_us));
    Printf.printf "executed plan; max |diff| vs reference interpreter: %g\n" diff
  end

let run_cmd =
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"ONNX-JSON operator graph to optimize and execute.")
  in
  let model =
    Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL"
           ~doc:"Zoo model to optimize and execute instead of a FILE (see `korch list').")
  in
  let assert_det =
    Arg.(value & flag
         & info [ "assert-deterministic" ]
             ~doc:"Re-orchestrate at a different -j and fail (exit 3) unless the plans are \
                   bit-identical.")
  in
  let mem_report =
    Arg.(value & flag
         & info [ "mem-report" ]
             ~doc:"Execute the plan a second time with buffer reuse, fail (exit 4) unless \
                   outputs are bit-identical, and print the memory planner and arena stats.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Optimize and execute an ONNX-JSON graph or zoo model")
    Term.(
      const run_action $ file $ model $ gpu_arg $ precision_arg $ batch_arg $ small_arg
      $ window_arg $ jobs_arg $ verbose_arg $ inject_arg $ fault_seed_arg $ json_arg $ trace_arg
      $ assert_det $ mem_report $ backend_arg)

(* ------------------------- table ------------------------ *)

let table_action model gpu precision lo hi small window jobs json =
  if lo < 1 || hi < lo then begin
    Printf.eprintf "invalid batch range [%d, %d]: need 1 <= lo <= hi\n" lo hi;
    exit 2
  end;
  let entry = find_model model in
  let build ~batch = build_graph entry ~small ~batch in
  let cfg = config ~spec:gpu ~precision ~window ~jobs in
  let t0 = Obs.Clock.now_s () in
  let tab = Korch.Plan_table.build cfg ~model ~build ~lo ~hi in
  let wall_s = Obs.Clock.now_s () -. t0 in
  if json then print_endline (Korch.Report.plan_table_json_string tab)
  else begin
    Format.printf "%a" Korch.Plan_table.pp tab;
    Printf.printf "  wall-clock sweep: %.1f s\n" wall_s
  end

let table_cmd =
  let lo =
    Arg.(value & opt int 1 & info [ "lo" ] ~docv:"N" ~doc:"First batch the table covers.")
  in
  let hi =
    Arg.(value & opt int 8 & info [ "hi" ] ~docv:"N" ~doc:"Last batch the table covers.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the machine-readable table document (schema korch-plan-table/1) \
                   on stdout instead of the text summary.")
  in
  Cmd.v
    (Cmd.info "table"
       ~doc:"Build a batch-parametric plan table: orchestrate a model at doubling probe \
             batches, group probes that chose the same plan topology into batch ranges, \
             and refine the range boundaries into cost-model crossover batches.")
    Term.(
      const table_action $ model_arg $ gpu_arg $ precision_arg $ lo $ hi $ small_arg
      $ window_arg $ jobs_arg $ json)

let () =
  let info =
    Cmd.info "korch" ~version:"1.0.0"
      ~doc:"Optimal kernel orchestration for tensor programs (Korch, ASPLOS 2024)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; optimize_cmd; compare_cmd; export_cmd; run_cmd; check_cmd; analyze_cmd;
            table_cmd;
          ]))
