(* Rewrite-rule lint runner, driven by the dune [@lint] alias (which is a
   dependency of [@runtest]). Exercises every fission rule and every
   transformation rule on seeded random pattern instances via
   [Verify.Rule_check] and fails the build on any error finding. *)

let () =
  let seed = ref 0x5eed in
  let count = ref 5 in
  let quiet = ref false in
  let spec =
    [
      ("-seed", Arg.Set_int seed, "SEED base random seed (default 0x5eed)");
      ("-count", Arg.Set_int count, "N random instances per rule (default 5)");
      ("-quiet", Arg.Set quiet, " print errors only");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "lint_rules [options]";
  let report = Verify.Rule_check.lint_all ~seed:!seed ~count:!count () in
  let shown = if !quiet then Verify.Diagnostics.errors report else report in
  List.iter (fun d -> Format.printf "%a@." Verify.Diagnostics.pp_diag d) shown;
  let e, w, i = Verify.Diagnostics.count_severity report in
  Format.printf "lint: %d rules checked, %d error(s), %d warning(s), %d info@."
    (List.length Verify.Rule_check.fission_rule_names
    + List.length Verify.Rule_check.transform_rule_names)
    e w i;
  if e > 0 then exit 1
