(* bench_gate — the bench-regression gate CI runs.

   Compares a freshly produced bench document (schema korch-bench/1, from
   `bench/main.exe --bench-json`) against a committed baseline and exits
   nonzero when any entry's plan latency regressed beyond the tolerance,
   or when an entry present in the baseline is missing from the current
   run. Improvements and new entries are reported but never fail the
   gate; refreshing the baseline is an explicit `--update` run.

   Exit codes: 0 OK, 1 regression or missing entry, 2 usage/parse error. *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

let parse_doc path =
  match Onnx.Json.of_string (read_file path) with
  | j -> j
  | exception Onnx.Json.Parse_error (msg, off) ->
    Printf.eprintf "bench_gate: %s: parse error at byte %d: %s\n" path off msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "bench_gate: %s\n" msg;
    exit 2

type entry = { key : string; latency_us : float; kernels : int }

(* An entry's identity: experiment + model + gpu + precision. *)
let entries_of path (j : Onnx.Json.t) : entry list =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "bench_gate: %s: %s\n" path m; exit 2) fmt in
  (match Onnx.Json.member "schema" j with
  | Some (Onnx.Json.Str "korch-bench/1") -> ()
  | _ -> fail "missing or unsupported \"schema\" (want korch-bench/1)");
  match Onnx.Json.member "entries" j with
  | Some (Onnx.Json.List l) ->
    List.map
      (fun e ->
        let str k =
          match Onnx.Json.member k e with
          | Some (Onnx.Json.Str s) -> s
          | _ -> fail "entry missing string field %S" k
        in
        let num k =
          match Onnx.Json.member k e with
          | Some (Onnx.Json.Num n) -> n
          | _ -> fail "entry missing numeric field %S" k
        in
        {
          key =
            Printf.sprintf "%s/%s/%s/%s" (str "experiment") (str "model") (str "gpu")
              (str "precision");
          latency_us = num "latency_us";
          kernels = int_of_float (num "kernels");
        })
      l
  | _ -> fail "missing \"entries\" list"

let gate baseline_path current_path tolerance_pct =
  let baseline = entries_of baseline_path (parse_doc baseline_path) in
  let current = entries_of current_path (parse_doc current_path) in
  let failures = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.key = b.key) current with
      | None ->
        incr failures;
        Printf.printf "MISSING    %-40s (in baseline, not in current run)\n" b.key
      | Some c ->
        let delta_pct =
          if b.latency_us = 0.0 then 0.0
          else (c.latency_us -. b.latency_us) /. b.latency_us *. 100.0
        in
        if delta_pct > tolerance_pct then begin
          incr failures;
          Printf.printf "REGRESSION %-40s %.2f us -> %.2f us (%+.2f%% > %+.2f%% tolerance)\n"
            b.key b.latency_us c.latency_us delta_pct tolerance_pct
        end
        else
          Printf.printf "ok         %-40s %.2f us -> %.2f us (%+.2f%%, %d kernels)\n" b.key
            b.latency_us c.latency_us delta_pct c.kernels)
    baseline;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> b.key = c.key) baseline) then
        Printf.printf "new        %-40s %.2f us (not in baseline — commit a refresh)\n" c.key
          c.latency_us)
    current;
  if !failures > 0 then begin
    Printf.printf "bench gate: FAILED (%d regression(s)/missing entrie(s))\n" !failures;
    exit 1
  end
  else print_endline "bench gate: OK"

let () =
  let baseline =
    Arg.(required & opt (some file) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Committed korch-bench/1 baseline document.")
  in
  let current =
    Arg.(required & opt (some file) None & info [ "current" ] ~docv:"FILE"
           ~doc:"Freshly produced korch-bench/1 document to gate.")
  in
  let tolerance =
    Arg.(value & opt float 2.0 & info [ "tolerance" ] ~docv:"PCT"
           ~doc:"Allowed plan-latency increase per entry, in percent.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench_gate" ~doc:"Fail when a bench run regresses against its baseline")
      Term.(const gate $ baseline $ current $ tolerance)
  in
  exit (Cmd.eval cmd)
