(* bench_gate — the bench-regression gate CI runs.

   Compares a freshly produced bench document (schema korch-bench/1, from
   `bench/main.exe --bench-json`) against a committed baseline and exits
   nonzero when any entry's plan latency regressed beyond the latency
   tolerance, any entry's planned peak memory regressed beyond the memory
   tolerance, or when an entry present in the baseline is missing from
   the current run. Improvements and new entries are reported but never
   fail the gate; refreshing the baseline is an explicit `--update` run.

   A baseline entry without the (newer) "peak_mem_bytes" field skips the
   memory check for that entry with a note telling the operator how to
   refresh — an old-but-valid baseline must not turn into a bare failure.
   Likewise, korch-report/1 documents now carry an optional "analysis"
   object (the static-analysis outcome); a bench document or entry that
   embeds one is noted and ignored — the lint gate is @analyze's job,
   never this gate's.

   Exit codes: 0 OK, 1 regression or missing entry, 2 usage/parse error. *)

open Cmdliner

let refresh_hint path =
  Printf.sprintf
    "regenerate it with `dune exec bench/main.exe -- --only smoke --bench-json %s` and commit \
     the result"
    path

let read_file path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf
      "bench_gate: baseline/current file %s does not exist.\n\
       If this is the committed baseline, %s.\n"
      path (refresh_hint path);
    exit 2
  end;
  let ic = open_in path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  doc

let parse_doc path =
  match Onnx.Json.of_string (read_file path) with
  | j -> j
  | exception Onnx.Json.Parse_error (msg, off) ->
    Printf.eprintf "bench_gate: %s: parse error at byte %d: %s\n" path off msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "bench_gate: %s\n" msg;
    exit 2

type entry = {
  key : string;
  latency_us : float;
  kernels : int;
  peak_mem_bytes : float option;  (* absent in pre-memplan baselines *)
}

(* An entry's identity: experiment + model + gpu + precision. *)
let entries_of path (j : Onnx.Json.t) : entry list =
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "bench_gate: %s: %s\n" path m; exit 2) fmt in
  (match Onnx.Json.member "schema" j with
  | Some (Onnx.Json.Str "korch-bench/1") -> ()
  | _ -> fail "missing or unsupported \"schema\" (want korch-bench/1)");
  (* Forward compatibility: a korch-bench/1 document may grow top-level
     blocks this gate predates (e.g. "analysis", "serving"). Anything
     other than the two fields the gate consumes is noted and ignored —
     an enriched document must not turn into a bare failure. *)
  (match j with
  | Onnx.Json.Obj fields ->
    List.iter
      (fun (k, _) ->
        if k <> "schema" && k <> "entries" then
          Printf.printf
            "note       %-40s document carries a top-level %S block this gate does not \
             consume — informational, ignored\n"
            path k)
      fields
  | _ -> ());
  match Onnx.Json.member "entries" j with
  | Some (Onnx.Json.List l) ->
    List.map
      (fun e ->
        let str k =
          match Onnx.Json.member k e with
          | Some (Onnx.Json.Str s) -> s
          | _ -> fail "entry missing string field %S" k
        in
        let num k =
          match Onnx.Json.member k e with
          | Some (Onnx.Json.Num n) -> n
          | _ -> fail "entry missing numeric field %S" k
        in
        let opt_num k =
          match Onnx.Json.member k e with Some (Onnx.Json.Num n) -> Some n | _ -> None
        in
        let key =
          Printf.sprintf "%s/%s/%s/%s" (str "experiment") (str "model") (str "gpu")
            (str "precision")
        in
        (match Onnx.Json.member "analysis" e with
        | Some _ ->
          Printf.printf
            "note       %-40s embeds an \"analysis\" block — informational, ignored\n" key
        | None -> ());
        {
          key;
          latency_us = num "latency_us";
          kernels = int_of_float (num "kernels");
          peak_mem_bytes = opt_num "peak_mem_bytes";
        })
      l
  | _ -> fail "missing \"entries\" list"

let gate baseline_path current_path tolerance_pct mem_tolerance_pct =
  let baseline = entries_of baseline_path (parse_doc baseline_path) in
  let current = entries_of current_path (parse_doc current_path) in
  let failures = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.key = b.key) current with
      | None ->
        incr failures;
        Printf.printf "MISSING    %-40s (in baseline, not in current run)\n" b.key
      | Some c ->
        let delta_pct =
          if b.latency_us = 0.0 then 0.0
          else (c.latency_us -. b.latency_us) /. b.latency_us *. 100.0
        in
        if delta_pct > tolerance_pct then begin
          incr failures;
          Printf.printf "REGRESSION %-40s %.2f us -> %.2f us (%+.2f%% > %+.2f%% tolerance)\n"
            b.key b.latency_us c.latency_us delta_pct tolerance_pct
        end
        else
          Printf.printf "ok         %-40s %.2f us -> %.2f us (%+.2f%%, %d kernels)\n" b.key
            b.latency_us c.latency_us delta_pct c.kernels;
        (* Peak-memory gate, when both sides carry the field. *)
        match (b.peak_mem_bytes, c.peak_mem_bytes) with
        | Some bm, Some cm ->
          let mem_delta_pct = if bm = 0.0 then 0.0 else (cm -. bm) /. bm *. 100.0 in
          if mem_delta_pct > mem_tolerance_pct then begin
            incr failures;
            Printf.printf
              "REGRESSION %-40s peak mem %.0f B -> %.0f B (%+.2f%% > %+.2f%% tolerance)\n"
              b.key bm cm mem_delta_pct mem_tolerance_pct
          end
          else
            Printf.printf "ok         %-40s peak mem %.0f B -> %.0f B (%+.2f%%)\n" b.key bm cm
              mem_delta_pct
        | None, _ ->
          Printf.printf
            "note       %-40s baseline lacks \"peak_mem_bytes\" — memory gate skipped; %s\n"
            b.key (refresh_hint baseline_path)
        | Some _, None ->
          Printf.printf
            "note       %-40s current run lacks \"peak_mem_bytes\" — memory gate skipped \
             (bench harness predates the memory planner?)\n"
            b.key)
    baseline;
  List.iter
    (fun c ->
      if not (List.exists (fun b -> b.key = c.key) baseline) then
        Printf.printf "new        %-40s %.2f us (not in baseline — commit a refresh)\n" c.key
          c.latency_us)
    current;
  if !failures > 0 then begin
    Printf.printf "bench gate: FAILED (%d regression(s)/missing entrie(s))\n" !failures;
    exit 1
  end
  else print_endline "bench gate: OK"

let () =
  (* [string], not [file]: a missing baseline must produce the actionable
     refresh hint above, not cmdliner's bare "no such file" usage error. *)
  let baseline =
    Arg.(required & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Committed korch-bench/1 baseline document.")
  in
  let current =
    Arg.(required & opt (some string) None & info [ "current" ] ~docv:"FILE"
           ~doc:"Freshly produced korch-bench/1 document to gate.")
  in
  let tolerance =
    Arg.(value & opt float 2.0 & info [ "tolerance" ] ~docv:"PCT"
           ~doc:"Allowed plan-latency increase per entry, in percent.")
  in
  let mem_tolerance =
    Arg.(value & opt float 5.0 & info [ "mem-tolerance" ] ~docv:"PCT"
           ~doc:"Allowed planned peak-memory increase per entry, in percent.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "bench_gate" ~doc:"Fail when a bench run regresses against its baseline")
      Term.(const gate $ baseline $ current $ tolerance $ mem_tolerance)
  in
  exit (Cmd.eval cmd)
