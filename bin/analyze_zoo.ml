(* Zoo lint runner, driven by the dune [@analyze] alias (a dependency of
   [@runtest]). Runs the abstract-interpretation analyses end to end on
   the executable zoo models — value ranges and dead code on each
   fissioned primitive graph, then the memory-planner hazard cross-check
   on an orchestrated plan — writes every finding to a JSON artifact
   (one korch-lint/1 document per model), and fails the build if any
   model produces a finding above warning. *)

let models = [ "candy"; "yolox"; "yolov4"; "segformer" ]

let () =
  let out = ref "" in
  let verbose = ref false in
  let spec =
    [
      ("-o", Arg.Set_string out, "FILE write the findings JSON document to FILE");
      ("-v", Arg.Set verbose, " print every finding, not just errors and warnings");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "analyze_zoo [options]";
  let failed = ref false in
  let docs =
    List.map
      (fun name ->
        let entry =
          match Models.Registry.find name with
          | Some e -> e
          | None ->
            Printf.eprintf "analyze: unknown zoo model %S\n" name;
            exit 2
        in
        let g =
          Fission.Canonicalize.fold_batch_norms (entry.Models.Registry.build_small ~batch:1 ())
        in
        let pg, _ = Fission.Engine.run g in
        let report = Analysis.graph_report pg in
        (* Orchestrate (its own invariant checks included — a hazard at
           this stage is a bug worth a loud exception) and audit the
           plan's arena packing a second time from here, so the lint
           artifact records the cross-check even when all is well. *)
        let cfg =
          { Korch.Orchestrator.default_config with
            Korch.Orchestrator.partition_max_prims = 12 }
        in
        let r = Korch.Orchestrator.run_primgraph cfg pg in
        let mp =
          Runtime.Memplan.analyze r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan
        in
        let report =
          report
          @ Analysis.plan_report r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan mp
        in
        let e, w, i = Verify.Diagnostics.count_severity report in
        Printf.printf "%-10s %d error(s), %d warning(s), %d info\n" name e w i;
        List.iter
          (fun (d : Verify.Diagnostics.diag) ->
            if !verbose || d.Verify.Diagnostics.severity <> Verify.Diagnostics.Info then
              Format.printf "  %a@." Verify.Diagnostics.pp_diag d)
          report;
        if Analysis.Lint.exceeds_warning report then failed := true;
        ( name,
          Analysis.Lint.to_json
            ~meta:[ ("source", Obs.Jsonw.Str name); ("variant", Obs.Jsonw.Str "small") ]
            report ))
      models
  in
  if !out <> "" then begin
    let doc =
      Obs.Jsonw.Obj
        [ ("schema", Obs.Jsonw.Str "korch-lint-suite/1"); ("models", Obs.Jsonw.Obj docs) ]
    in
    let oc = open_out !out in
    output_string oc (Obs.Jsonw.to_string doc);
    close_out oc;
    Printf.printf "wrote findings document to %s\n" !out
  end;
  if !failed then begin
    print_endline "analyze: FAILED (findings above warning)";
    exit 1
  end
  else print_endline "analyze: OK"
