(* Shared helpers for the benchmark harness: configurations, table
   printing, and the baseline/Korch runners every experiment uses. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* Platform configurations from §6.1: V100 in FP32, A100 with tensor cores
   in TF32. *)
let v100_fp32 = (Gpu.Spec.v100, Gpu.Precision.FP32)
let a100_tf32 = (Gpu.Spec.a100, Gpu.Precision.TF32)

(* Worker domains per orchestrator run, settable with `-j N` on the bench
   command line. Plans are identical for every value (the experiments'
   numbers do not depend on it); only wall-clock optimization time does. *)
let jobs = ref (Parallel.Domain_pool.default_jobs ())

let korch_config ?(partition_max_prims = 12) ?jobs:j (spec, precision) =
  { Korch.Orchestrator.default_config with
    Korch.Orchestrator.spec; precision; partition_max_prims;
    jobs = (match j with Some j -> j | None -> !jobs) }

(* Run Korch on an operator graph (BN folded first, as every deployment
   stack does). *)
let run_korch ?partition_max_prims ?jobs platform (g : Ir.Opgraph.t) :
    Korch.Orchestrator.result =
  let g = Fission.Canonicalize.fold_batch_norms g in
  Korch.Orchestrator.run (korch_config ?partition_max_prims ?jobs platform) g

(* Monotonic wall-clock seconds ([Sys.time] is CPU time, which counts all
   domains and so overstates parallel runs). *)
let wall_clock () = Obs.Clock.now_s ()

(* ----------------------- bench-JSON accumulator ----------------------- *)

(* Experiments append one entry per orchestrated (model, platform) pair;
   `--bench-json FILE` writes the korch-bench/1 document bin/bench_gate.exe
   regresses against its committed baseline. *)
let bench_entries : Obs.Jsonw.t list ref = ref []

let record_entry ~experiment ~model ((spec, precision) : Gpu.Spec.t * Gpu.Precision.t)
    (r : Korch.Orchestrator.result) ~wall_s =
  bench_entries :=
    Obs.Jsonw.Obj
      [
        ("experiment", Obs.Jsonw.Str experiment);
        ("model", Obs.Jsonw.Str model);
        ("gpu", Obs.Jsonw.Str spec.Gpu.Spec.name);
        ("precision", Obs.Jsonw.Str (Gpu.Precision.to_string precision));
        ("latency_us", Obs.Jsonw.Float r.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us);
        ("kernels", Obs.Jsonw.Int (Runtime.Plan.kernel_count r.Korch.Orchestrator.plan));
        ("redundancy", Obs.Jsonw.Int (Runtime.Plan.redundancy r.Korch.Orchestrator.plan));
        ("candidates", Obs.Jsonw.Int r.Korch.Orchestrator.total_candidates);
        ("states", Obs.Jsonw.Int r.Korch.Orchestrator.total_states);
        ( "peak_mem_bytes",
          Obs.Jsonw.Int r.Korch.Orchestrator.memory.Runtime.Memplan.peak_bytes );
        ( "degraded_segments",
          Obs.Jsonw.Int (List.length r.Korch.Orchestrator.degraded_segments) );
        ("wall_s", Obs.Jsonw.Float wall_s);
      ]
    :: !bench_entries

(* Extra top-level blocks experiments may attach to the document (e.g.
   exp_serving's "serving" summary). bin/bench_gate.exe notes and ignores
   any top-level field it does not consume, so these enrich the artifact
   without touching the gate. *)
let bench_extra_blocks : (string * Obs.Jsonw.t) list ref = ref []

let record_extra_block name json =
  bench_extra_blocks := (name, json) :: List.remove_assoc name !bench_extra_blocks

let bench_json () =
  Obs.Jsonw.to_string
    (Obs.Jsonw.Obj
       ([
          ("schema", Obs.Jsonw.Str "korch-bench/1");
          ("entries", Obs.Jsonw.List (List.rev !bench_entries));
        ]
       @ List.rev !bench_extra_blocks))

type baseline_row = {
  eager_us : float;
  tvm_us : float;
  trt_us : float;
  dp_us : float;
}

let run_baselines (spec, precision) (g : Ir.Opgraph.t) : baseline_row =
  let g = Fission.Canonicalize.fold_batch_norms g in
  let env = Baselines.Common.make_env ~spec ~precision g in
  {
    eager_us = (Baselines.Eager.run env).Runtime.Plan.total_latency_us;
    tvm_us = (Baselines.Greedy_tvm.run env).Runtime.Plan.total_latency_us;
    trt_us = (Baselines.Trt.run env).Runtime.Plan.total_latency_us;
    dp_us = (Baselines.Dp_chain.run env).Runtime.Plan.total_latency_us;
  }

let speedup baseline korch = baseline /. korch

(* Describe one plan kernel as "{prim prim ...}". *)
let kernel_to_string (g : Ir.Primgraph.t) (k : Runtime.Plan.kernel) : string =
  let names =
    List.map (fun id -> Ir.Primitive.to_string (Ir.Graph.op g id)) k.Runtime.Plan.prims
  in
  Printf.sprintf "[%s] {%s} %.2fus" k.Runtime.Plan.backend (String.concat " " names)
    k.Runtime.Plan.latency_us

let print_plan (g : Ir.Primgraph.t) (plan : Runtime.Plan.t) =
  List.iteri
    (fun i k -> Printf.printf "    k%-2d %s\n" (i + 1) (kernel_to_string g k))
    plan.Runtime.Plan.kernels
