(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) under the simulated-GPU substitution documented
   in DESIGN.md. Run all experiments with `dune exec bench/main.exe`, or a
   subset with `-- --only fig6,tab2`. *)

let experiments : (string * string * (unit -> unit)) list =
  [ ("tab1", "primitive taxonomy (Table 1)", Exp_tab1.run);
    ("fig5", "GPU generation trends (Figure 5)", Exp_fig5.run);
    ("fig6", "end-to-end performance (Figure 6)", Exp_fig6.run);
    ("fig7", "fission adaptation study (Figure 7)", Exp_fig7.run);
    ("fig4", "softmax attention orchestration (Figures 2/4)", Exp_fig4.run);
    ("fig10", "EfficientViT case study (Figures 8-10)", Exp_fig10.run);
    ("fig12", "Candy InstanceNorm case study (Figure 12)", Exp_fig12.run);
    ("fig13", "greedy-fusion crossover (Figures 11/13)", Exp_fig13.run);
    ("tab2", "tuning statistics (Table 2)", Exp_tab2.run);
    ("ablation", "design-choice ablations", Exp_ablation.run);
    ("multistream", "multi-stream headroom (extension)", Exp_multistream.run);
    ("parallel", "multicore segment orchestration speedup", Exp_parallel.run);
    ("native", "interpreter vs native C backend (extension)", Exp_native.run);
    ("serving", "durable plan cache & degradation ladder (extension)", Exp_serving.run);
    ("decode", "transformer-decode plan tables over batch 1..256 (extension)", Exp_decode.run);
    ("micro", "bechamel microbenchmarks", Microbench.run);
    ("smoke", "CI bench-gate workload (fastest models)", Exp_smoke.run) ]

let () =
  let only = ref None in
  let bench_json = ref None in
  let trace = ref None in
  let rec parse = function
    | [] -> ()
    | "--only" :: v :: rest ->
      only := Some (String.split_on_char ',' v);
      parse rest
    | "--list" :: _ ->
      List.iter (fun (id, d, _) -> Printf.printf "%-10s %s\n" id d) experiments;
      exit 0
    | ("-j" | "--jobs") :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n >= 1 -> Bench_common.jobs := n
      | _ -> Printf.eprintf "-j expects a positive integer, got %s\n" v);
      parse rest
    | "--bench-json" :: v :: rest ->
      bench_json := Some v;
      parse rest
    | "--trace" :: v :: rest ->
      trace := Some v;
      parse rest
    | x :: rest ->
      Printf.eprintf
        "unknown argument %s (try --list / --only ids / -j N / --bench-json FILE / --trace \
         FILE)\n"
        x;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    match !only with
    | None -> experiments
    | Some ids -> List.filter (fun (id, _, _) -> List.mem id ids) experiments
  in
  Printf.printf "Korch benchmark harness — %d experiment(s)\n" (List.length selected);
  if !trace <> None then Obs.Trace.start ();
  (* Wall clock, not [Sys.time]: CPU time counts every worker domain and
     overstates -j > 1 runs (the same trap that once shrank the BLP
     budget — see DESIGN.md). *)
  List.iter
    (fun (_, _, run) ->
      let t0 = Bench_common.wall_clock () in
      run ();
      Printf.printf "[%.1fs]\n" (Bench_common.wall_clock () -. t0))
    selected;
  (match !trace with
  | Some path ->
    Obs.Trace.stop ();
    let oc = open_out path in
    output_string oc (Obs.Trace.export ());
    close_out oc;
    Printf.printf "wrote trace to %s\n" path
  | None -> ());
  match !bench_json with
  | Some path ->
    let oc = open_out path in
    output_string oc (Bench_common.bench_json ());
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote bench document to %s\n" path
  | None -> ()
