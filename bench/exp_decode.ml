(* Transformer-decode plan tables — the batch-parametric serving story.

   One Plan_table sweep over batch 1..256 of the decode workload
   (KV-cache append + masked attention + MLP) on V100/FP32, then a
   per-probe comparison: the table's anchor plan versus a fixed-batch
   re-orchestration at that probe, and versus the greedy-fusion and
   unfused baselines. At every anchor the table plan must be
   bit-identical to the fixed-batch plan — the table stores the verbatim
   orchestration output, so a mismatch is a determinism bug, reported
   loudly. Also records fixed-batch korch-bench entries at the sweep's
   endpoints (batch 1 and 256) so the regression gate can watch the
   decode workload drift. *)

let lo = 1
let hi = 256

let run () =
  Bench_common.section
    (Printf.sprintf "transformer decode: plan table, batch %d..%d (V100/FP32)" lo hi);
  let entry =
    match Models.Registry.find "decode" with
    | Some e -> e
    | None -> failwith "exp_decode: decode model not registered"
  in
  let build ~batch =
    Fission.Canonicalize.fold_batch_norms (entry.Models.Registry.build ~batch ())
  in
  let cfg = Bench_common.korch_config Bench_common.v100_fp32 in
  let t0 = Bench_common.wall_clock () in
  let tab = Korch.Plan_table.build cfg ~model:"decode" ~build ~lo ~hi in
  let sweep_s = Bench_common.wall_clock () -. t0 in
  Printf.printf "  table: %d range(s), crossovers at [%s]  [%.1fs sweep]\n"
    (List.length tab.Korch.Plan_table.ranges)
    (String.concat "; " (List.map string_of_int tab.Korch.Plan_table.crossovers))
    sweep_s;
  List.iter
    (fun (r : Korch.Plan_table.range) ->
      Printf.printf "    [%d..%d] anchor=%d kernels=%d %.2f us%s\n" r.Korch.Plan_table.lo
        r.Korch.Plan_table.hi r.Korch.Plan_table.anchor
        (Runtime.Plan.kernel_count r.Korch.Plan_table.plan)
        r.Korch.Plan_table.plan.Runtime.Plan.total_latency_us
        (if r.Korch.Plan_table.refined then "  (boundary refined)" else ""))
    tab.Korch.Plan_table.ranges;
  (* Per-probe comparison. The fixed-batch run at a range's anchor must
     reproduce the table's stored plan bit for bit. *)
  Printf.printf "\n  %-7s %-12s %-12s %-12s %-12s %s\n" "batch" "table-plan" "fixed-orch"
    "greedy-tvm" "unfused" "anchor-identical";
  let identical = ref true in
  let endpoint_results = ref [] in
  List.iter
    (fun b ->
      let g = build ~batch:b in
      let fixed = Korch.Orchestrator.run cfg g in
      if b = lo || b = hi then endpoint_results := (b, fixed) :: !endpoint_results;
      let range =
        match Korch.Plan_table.range_for_probe tab b with
        | Some r -> r
        | None -> failwith (Printf.sprintf "exp_decode: probe %d missing from table" b)
      in
      let is_anchor = b = range.Korch.Plan_table.anchor in
      let bit_identical =
        (not is_anchor)
        || (range.Korch.Plan_table.plan = fixed.Korch.Orchestrator.plan
           && range.Korch.Plan_table.graph = fixed.Korch.Orchestrator.graph)
      in
      if is_anchor && not bit_identical then identical := false;
      let base = Bench_common.run_baselines Bench_common.v100_fp32 g in
      Printf.printf "  %-7d %-12.2f %-12.2f %-12.2f %-12.2f %s\n" b
        range.Korch.Plan_table.plan.Runtime.Plan.total_latency_us
        fixed.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us base.Bench_common.tvm_us
        base.Bench_common.eager_us
        (if is_anchor then (if bit_identical then "yes" else "MISMATCH") else "-"))
    (Korch.Plan_table.probe_batches ~lo ~hi);
  if not !identical then
    failwith "exp_decode: table anchor plan differs from fixed-batch orchestration";
  (* Regression-gate entries at the sweep endpoints. korch-bench/1 keys
     have no batch field, so the batch is folded into the model name. *)
  List.iter
    (fun (b, r) ->
      Bench_common.record_entry ~experiment:"decode"
        ~model:(Printf.sprintf "decode-b%d" b) Bench_common.v100_fp32 r ~wall_s:sweep_s)
    (List.rev !endpoint_results);
  Bench_common.record_extra_block "decode_table"
    (Obs.Jsonw.Obj
       [
         ("model", Obs.Jsonw.Str "decode");
         ("lo", Obs.Jsonw.Int lo);
         ("hi", Obs.Jsonw.Int hi);
         ( "crossovers",
           Obs.Jsonw.List
             (List.map (fun b -> Obs.Jsonw.Int b) tab.Korch.Plan_table.crossovers) );
         ( "ranges",
           Obs.Jsonw.List
             (List.map
                (fun (r : Korch.Plan_table.range) ->
                  Obs.Jsonw.Obj
                    [
                      ("lo", Obs.Jsonw.Int r.Korch.Plan_table.lo);
                      ("hi", Obs.Jsonw.Int r.Korch.Plan_table.hi);
                      ("anchor", Obs.Jsonw.Int r.Korch.Plan_table.anchor);
                      ( "kernels",
                        Obs.Jsonw.Int (Runtime.Plan.kernel_count r.Korch.Plan_table.plan) );
                      ( "latency_us",
                        Obs.Jsonw.Float
                          r.Korch.Plan_table.plan.Runtime.Plan.total_latency_us );
                      ("refined", Obs.Jsonw.Bool r.Korch.Plan_table.refined);
                    ])
                tab.Korch.Plan_table.ranges) );
         ("sweep_wall_s", Obs.Jsonw.Float sweep_s);
       ])
