(* Serving-layer benchmark (extension): what the durable plan cache buys.

   Drives Serve.Server.handle in process (no sockets — this measures the
   serving ladder, not the kernel) against a throwaway cache directory:
   one cold request per model (fission + enumerate + ILP), then a batch
   of warm requests that must all hit the durable cache, plus one
   deadline-pressured request on an empty cache to show the degradation
   ladder in action. Attaches a "serving" top-level block to the
   korch-bench/1 document via Bench_common.record_extra_block — which is
   exactly the kind of unknown block bin/bench_gate.exe must note and
   ignore. *)

let models = [ ("candy", true); ("segformer", true) ]

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let request_json (r : Serve.Protocol.request) : Onnx.Json.t =
  Onnx.Json.of_string (Obs.Jsonw.to_string (Serve.Protocol.request_to_json r))

let field name (j : Obs.Jsonw.t) : string =
  (* Responses are Jsonw; round-trip through the printer for inspection. *)
  match Onnx.Json.member name (Onnx.Json.of_string (Obs.Jsonw.to_string j)) with
  | Some (Onnx.Json.Str s) -> s
  | _ -> "?"

let run () =
  Bench_common.section "serving: durable plan cache & degradation ladder (extension)";
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "korch-bench-serve-%d" (Unix.getpid ()))
  in
  rm_rf cache_dir;
  let t =
    Serve.Server.create
      {
        Serve.Server.default_config with
        Serve.Server.cache_dir;
        socket_path = Filename.concat cache_dir "unused.sock";
        jobs = 1;
      }
  in
  let warm_rounds = 20 in
  let results =
    List.map
      (fun (model, small) ->
        let req =
          request_json
            { Serve.Protocol.default_request with Serve.Protocol.verb = "optimize";
              model = Some model; small }
        in
        let t0 = Bench_common.wall_clock () in
        let cold = Serve.Server.handle t req in
        let cold_s = Bench_common.wall_clock () -. t0 in
        let warm_times =
          List.init warm_rounds (fun _ ->
              let t0 = Bench_common.wall_clock () in
              let resp = Serve.Server.handle t req in
              let dt = Bench_common.wall_clock () -. t0 in
              assert (field "cache" resp = "hit");
              dt)
        in
        let sorted = List.sort compare warm_times in
        let warm_p50 = List.nth sorted (warm_rounds / 2) in
        Bench_common.row "  %-12s cold %8.1f ms (%s)   warm p50 %8.3f ms   speedup %7.0fx\n"
          model (cold_s *. 1e3) (field "cache" cold) (warm_p50 *. 1e3)
          (if warm_p50 > 0.0 then cold_s /. warm_p50 else 0.0);
        (model, cold_s, warm_p50))
      models
  in
  (* Degradation ladder: an aggressive deadline on an empty cache still
     produces an executable plan — record which tier it landed on. *)
  let deadline_resp =
    Serve.Server.handle t
      (request_json
         { Serve.Protocol.default_request with Serve.Protocol.verb = "optimize";
           model = Some "candy"; small = true; no_cache = true;
           deadline_ms = Some 0.5 })
  in
  Bench_common.row "  deadline 0.5ms (cache bypassed): status=%s tier=%s\n"
    (field "status" deadline_resp) (field "tier" deadline_resp);
  let stats = Serve.Plan_cache.stats (Serve.Server.cache t) in
  Bench_common.row "  cache: %d hits / %d misses (hit rate %.2f)\n"
    stats.Serve.Plan_cache.hits stats.Serve.Plan_cache.misses
    (Serve.Plan_cache.hit_rate (Serve.Server.cache t));
  Bench_common.record_extra_block "serving"
    (Obs.Jsonw.Obj
       [
         ( "models",
           Obs.Jsonw.List
             (List.map
                (fun (model, cold_s, warm_p50) ->
                  Obs.Jsonw.Obj
                    [
                      ("model", Obs.Jsonw.Str model);
                      ("cold_ms", Obs.Jsonw.Float (cold_s *. 1e3));
                      ("warm_p50_ms", Obs.Jsonw.Float (warm_p50 *. 1e3));
                    ])
                results) );
         ("deadline_tier", Obs.Jsonw.Str (field "tier" deadline_resp));
         ("cache", Serve.Plan_cache.stats_to_json (Serve.Server.cache t));
       ]);
  rm_rf cache_dir
