(* Interpreter vs. native C backend (extension experiment).

   Orchestrates every zoo model at test scale, executes the stitched plan
   on both executor backends, and reports measured wall-clocks side by
   side. Three properties are checked while measuring:

   - outputs are bit-identical between the backends (the differential
     gate that lets the native numbers be trusted at all);
   - every kernel actually ran natively (no silent fallbacks);
   - the measured per-kernel timings land in the profile database
     ({!Gpu.Profile_cache.measured_entries}) keyed by the same canonical
     signatures the cost model profiles under — the first real
     calibration data against the modelled roofline.

   Skipped entirely (with a note) when no C compiler is on PATH. *)

let bits_equal a b =
  Tensor.Shape.equal (Tensor.Nd.shape a) (Tensor.Nd.shape b)
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a.Tensor.Nd.data b.Tensor.Nd.data

let inputs_of (g : Ir.Opgraph.t) =
  Array.to_list g.Ir.Graph.nodes
  |> List.filter_map (fun nd ->
         match nd.Ir.Graph.op with
         | Ir.Optype.Input name ->
           Some (name, Tensor.Nd.randn (Tensor.Rng.create 11) nd.Ir.Graph.shape)
         | _ -> None)

let run () =
  Bench_common.section "interpreter vs native C backend (extension)";
  if not (Codegen.Kernel_cache.available ()) then
    print_endline "  skipped: no C compiler on PATH"
  else begin
    Bench_common.row "  %-12s %12s %12s %8s  %s\n" "model" "interp" "native" "speedup"
      "kernels";
    List.iter
      (fun (e : Models.Registry.entry) ->
        let g = e.Models.Registry.build_small () in
        let r = Bench_common.run_korch Bench_common.v100_fp32 g in
        let inputs = inputs_of g in
        let time f =
          let t0 = Bench_common.wall_clock () in
          let v = f () in
          (v, (Bench_common.wall_clock () -. t0) *. 1e3)
        in
        let interp_out, interp_ms =
          time (fun () ->
              Runtime.Executor.run ~backend:Runtime.Backend.Interp
                r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan ~inputs)
        in
        (* First native call pays compile+verify; time the warm second run,
           which is what repeated inference costs. *)
        let stats = Runtime.Backend.fresh_exec_stats () in
        let exec_native () =
          Runtime.Executor.run ~backend:Runtime.Backend.Native ~exec_stats:stats
            r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan ~inputs
        in
        let (_ : Tensor.Nd.t list) = exec_native () in
        let native_out, native_ms = time exec_native in
        if not (List.for_all2 bits_equal interp_out native_out) then
          failwith (Printf.sprintf "exp_native: %s outputs differ between backends" e.Models.Registry.name);
        if stats.Runtime.Backend.fallbacks <> [] then
          failwith (Printf.sprintf "exp_native: %s had native fallbacks" e.Models.Registry.name);
        let recorded =
          Korch.Calibrate.record ~spec:Gpu.Spec.v100 ~precision:Gpu.Precision.FP32
            r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan stats
        in
        Bench_common.row "  %-12s %10.2f ms %10.2f ms %7.1fx  %d native, %d timings\n"
          e.Models.Registry.name interp_ms native_ms
          (interp_ms /. Float.max native_ms 1e-9)
          stats.Runtime.Backend.native_kernels recorded)
      Models.Registry.all;
    let entries = Gpu.Profile_cache.measured_entries () in
    Printf.printf "  profile cache now holds measured timings for %d distinct kernels\n"
      (List.length entries)
  end
