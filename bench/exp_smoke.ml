(* Smoke benchmark — the CI bench gate's workload.

   Orchestrates the two fastest zoo models end to end at paper scale on
   V100/FP32 and records one korch-bench/1 entry each. Plan latencies are
   fully deterministic (simulated profiling, node-count solver budget), so
   any drift past the gate's tolerance is a real behaviour change in the
   pipeline, not measurement noise. Keep this fast: it runs on every pull
   request (`dune build @bench-smoke`). *)

let models = [ "candy"; "segformer"; "decode" ]

let run () =
  Bench_common.section "bench smoke (CI regression gate workload)";
  List.iter
    (fun name ->
      let entry =
        match Models.Registry.find name with
        | Some e -> e
        | None -> failwith ("exp_smoke: unknown zoo model " ^ name)
      in
      let g = entry.Models.Registry.build ~batch:1 () in
      let t0 = Bench_common.wall_clock () in
      let r = Bench_common.run_korch Bench_common.v100_fp32 g in
      let wall_s = Bench_common.wall_clock () -. t0 in
      Printf.printf "  %-12s %10.2f us  %4d kernels  %2d segments  [%.1fs]\n" name
        r.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us
        (Runtime.Plan.kernel_count r.Korch.Orchestrator.plan)
        (List.length r.Korch.Orchestrator.segments)
        wall_s;
      Bench_common.record_entry ~experiment:"smoke" ~model:name Bench_common.v100_fp32 r
        ~wall_s)
    models;
  (* Native-backend calibration pass: execute each model's test-scale
     build on the C backend and fold the measured kernel wall-clocks into
     the profile database, keyed by the same canonical signatures the
     simulated profiles use. The korch-bench entries above are recorded
     before this runs, so the CI gate's numbers are unaffected; without a
     C compiler the pass just notes the skip. *)
  if not (Codegen.Kernel_cache.available ()) then
    print_endline "  native calibration: skipped (no C compiler on PATH)"
  else
    List.iter
      (fun name ->
        let entry = Option.get (Models.Registry.find name) in
        let g = entry.Models.Registry.build_small () in
        let r = Bench_common.run_korch Bench_common.v100_fp32 g in
        let inputs =
          Array.to_list g.Ir.Graph.nodes
          |> List.filter_map (fun nd ->
                 match nd.Ir.Graph.op with
                 | Ir.Optype.Input n ->
                   Some (n, Tensor.Nd.randn (Tensor.Rng.create 3) nd.Ir.Graph.shape)
                 | _ -> None)
        in
        let stats = Runtime.Backend.fresh_exec_stats () in
        let (_ : Tensor.Nd.t list) =
          Runtime.Executor.run ~backend:Runtime.Backend.Native ~exec_stats:stats
            r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan ~inputs
        in
        let recorded =
          Korch.Calibrate.record ~spec:Gpu.Spec.v100 ~precision:Gpu.Precision.FP32
            r.Korch.Orchestrator.graph r.Korch.Orchestrator.plan stats
        in
        Printf.printf
          "  native calibration: %-12s %d kernel(s) measured, %d fallback(s), %d timings \
           recorded in the profile cache\n"
          name stats.Runtime.Backend.native_kernels
          (List.length stats.Runtime.Backend.fallbacks)
          recorded)
      models
