(* Smoke benchmark — the CI bench gate's workload.

   Orchestrates the two fastest zoo models end to end at paper scale on
   V100/FP32 and records one korch-bench/1 entry each. Plan latencies are
   fully deterministic (simulated profiling, node-count solver budget), so
   any drift past the gate's tolerance is a real behaviour change in the
   pipeline, not measurement noise. Keep this fast: it runs on every pull
   request (`dune build @bench-smoke`). *)

let models = [ "candy"; "segformer" ]

let run () =
  Bench_common.section "bench smoke (CI regression gate workload)";
  List.iter
    (fun name ->
      let entry =
        match Models.Registry.find name with
        | Some e -> e
        | None -> failwith ("exp_smoke: unknown zoo model " ^ name)
      in
      let g = entry.Models.Registry.build ~batch:1 () in
      let t0 = Bench_common.wall_clock () in
      let r = Bench_common.run_korch Bench_common.v100_fp32 g in
      let wall_s = Bench_common.wall_clock () -. t0 in
      Printf.printf "  %-12s %10.2f us  %4d kernels  %2d segments  [%.1fs]\n" name
        r.Korch.Orchestrator.plan.Runtime.Plan.total_latency_us
        (Runtime.Plan.kernel_count r.Korch.Orchestrator.plan)
        (List.length r.Korch.Orchestrator.segments)
        wall_s;
      Bench_common.record_entry ~experiment:"smoke" ~model:name Bench_common.v100_fp32 r
        ~wall_s)
    models
