(* Multicore segment orchestration: wall-clock optimization time with 1
   worker domain vs several, and a structural-equality check that the
   parallel plans are identical to the sequential ones. Per-segment work
   (transform search -> kernel identification -> profiling -> BLP) is
   embarrassingly parallel, so on a j-core machine the speedup should
   approach min(j, segments) for segment-balanced models. *)

let plans_equal (a : Korch.Orchestrator.result) (b : Korch.Orchestrator.result) =
  a.Korch.Orchestrator.plan = b.Korch.Orchestrator.plan

let time_run ~jobs platform g =
  let t0 = Bench_common.wall_clock () in
  let r = Bench_common.run_korch ~jobs platform g in
  (r, Bench_common.wall_clock () -. t0)

let run () =
  Bench_common.section "Multicore segment orchestration (-j)";
  let jobs = max 2 !Bench_common.jobs in
  Printf.printf "cores available: %d (recommended domains %d); comparing -j 1 vs -j %d\n"
    (Domain.recommended_domain_count ()) (Domain.recommended_domain_count ()) jobs;
  Printf.printf "%-14s %9s %12s %12s %8s %6s\n" "model" "segments" "seq opt(s)" "par opt(s)"
    "speedup" "plan=";
  List.iter
    (fun (e : Models.Registry.entry) ->
      let g = e.Models.Registry.build_small () in
      let seq, t_seq = time_run ~jobs:1 Bench_common.v100_fp32 g in
      let par, t_par = time_run ~jobs Bench_common.v100_fp32 g in
      Printf.printf "%-14s %9d %12.2f %12.2f %7.2fx %6s\n" e.Models.Registry.name
        (List.length seq.Korch.Orchestrator.segments)
        t_seq t_par
        (t_seq /. Float.max 1e-9 t_par)
        (if plans_equal seq par then "yes" else "NO!"))
    Models.Registry.all
